"""unicore-repro: the UNICORE architecture (Romberg, HPDC 1999), rebuilt.

A from-scratch, fully simulated reproduction of UNICORE's three-tier
grid middleware: the abstract job object and its protocol, the
X.509/https security architecture, gateway, network job supervisor,
Uspace/Xspace data model, and the vendor batch systems of the six German
production sites.

Typical entry points:

>>> from repro.grid import build_german_grid
>>> from repro import GridSession          # the public facade
>>> grid = build_german_grid()
>>> session = GridSession(grid, grid.add_user("A", logins={"FZJ": "a"}), "FZJ")

Subpackages (bottom-up):

- :mod:`repro.simkernel` — discrete-event engine;
- :mod:`repro.net` — simulated WAN and https channels;
- :mod:`repro.security` — PKI, SSL handshake, signed applets, UUDB;
- :mod:`repro.ajo` — the abstract job object (paper Figure 3);
- :mod:`repro.resources` — the resource model and ASN.1 resource pages;
- :mod:`repro.vfs` — Workstation / Xspace / Uspace;
- :mod:`repro.batch` — vendor batch systems (NQS, LoadLeveler, VPP, Codine);
- :mod:`repro.protocol` — the asynchronous consign-and-poll protocol;
- :mod:`repro.server` — gateway, Vsites, translation tables, the NJS;
- :mod:`repro.client` — browser, JPA, JMC;
- :mod:`repro.grid` — multi-site assembly and workloads;
- :mod:`repro.faults` — deterministic fault injection and resilience;
- :mod:`repro.ext` — the section-6 outlook: broker, accounting,
  application interfaces, co-allocation;
- :mod:`repro.api` — the :class:`~repro.api.GridSession` facade over
  the whole user tier (submit / status / outcome / cancel).
"""

__version__ = "0.1.0"

__all__ = [
    "GridSession",
    "JobHandle",
    "ajo",
    "batch",
    "client",
    "ext",
    "grid",
    "net",
    "protocol",
    "resources",
    "security",
    "server",
    "simkernel",
    "vfs",
]


def __getattr__(name: str):
    # The facade is exported lazily: repro.api imports half the stack,
    # which ``import repro`` alone should not pay for.
    if name in ("GridSession", "JobHandle"):
        from repro import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
