"""Exceptions for the resource-description model."""

from repro.errors import ReproError

__all__ = ["ResourceError", "ResourcePageError", "ResourceRequestError"]


class ResourceError(ReproError):
    """Base class for resource-model errors."""

    code = "resources.error"


class ResourcePageError(ResourceError):
    """A resource page is malformed or cannot be encoded/decoded."""

    code = "resources.page"


class ResourceRequestError(ResourceError):
    """A resource request is invalid or violates the target page's limits."""

    code = "resources.request"
