"""Exceptions for the resource-description model."""

__all__ = ["ResourceError", "ResourcePageError", "ResourceRequestError"]


class ResourceError(Exception):
    """Base class for resource-model errors."""


class ResourcePageError(ResourceError):
    """A resource page is malformed or cannot be encoded/decoded."""


class ResourceRequestError(ResourceError):
    """A resource request is invalid or violates the target page's limits."""
