"""The resource-page editor used by UNICORE site administrators.

Paper section 5.4: "This information is prepared by a UNICORE site
administrator through a resource page editor."  The editor is a builder
with validation at every step; :meth:`ResourcePageEditor.publish` yields
the immutable page (and its ASN.1 bytes) handed to the gateway for
distribution to JPAs.
"""

from __future__ import annotations

from repro.resources.errors import ResourcePageError
from repro.resources.model import RESOURCE_AXES, ResourceRange
from repro.resources.page import ResourcePage
from repro.resources.software import SoftwareCatalogue, SoftwareItem, SoftwareKind

__all__ = ["ResourcePageEditor"]


class ResourcePageEditor:
    """Stepwise construction of a :class:`ResourcePage`."""

    def __init__(self, vsite: str) -> None:
        if not vsite:
            raise ResourcePageError("editor requires a vsite name")
        self._vsite = vsite
        self._architecture = ""
        self._operating_system = ""
        self._peak_gflops = 0.0
        self._ranges: dict[str, ResourceRange] = {}
        self._software = SoftwareCatalogue()

    # -- system identification ------------------------------------------------
    def set_system(
        self, architecture: str, operating_system: str, peak_gflops: float
    ) -> "ResourcePageEditor":
        if not architecture or not operating_system:
            raise ResourcePageError("architecture and OS must be non-empty")
        if peak_gflops <= 0:
            raise ResourcePageError("peak_gflops must be positive")
        self._architecture = architecture
        self._operating_system = operating_system
        self._peak_gflops = float(peak_gflops)
        return self

    # -- resource limits ---------------------------------------------------------
    def set_range(
        self, axis: str, minimum: float, maximum: float
    ) -> "ResourcePageEditor":
        if axis not in RESOURCE_AXES:
            raise ResourcePageError(
                f"unknown resource axis {axis!r}; valid: {RESOURCE_AXES}"
            )
        self._ranges[axis] = ResourceRange(minimum=minimum, maximum=maximum)
        return self

    # -- software ------------------------------------------------------------------
    def add_compiler(
        self, name: str, version: str = "", invocation: str = ""
    ) -> "ResourcePageEditor":
        self._software.add(
            SoftwareItem(
                kind=SoftwareKind.COMPILER,
                name=name,
                version=version,
                invocation=invocation or name,
            )
        )
        return self

    def add_library(self, name: str, version: str = "") -> "ResourcePageEditor":
        self._software.add(
            SoftwareItem(kind=SoftwareKind.LIBRARY, name=name, version=version)
        )
        return self

    def add_package(
        self, name: str, version: str = "", invocation: str = ""
    ) -> "ResourcePageEditor":
        self._software.add(
            SoftwareItem(
                kind=SoftwareKind.PACKAGE,
                name=name,
                version=version,
                invocation=invocation or name,
            )
        )
        return self

    # -- publication -----------------------------------------------------------------
    def publish(self) -> ResourcePage:
        """Validate completeness and produce the immutable page."""
        if not self._architecture:
            raise ResourcePageError(
                f"page for {self._vsite!r} lacks system identification; "
                "call set_system() first"
            )
        missing = set(RESOURCE_AXES) - set(self._ranges)
        if missing:
            raise ResourcePageError(
                f"page for {self._vsite!r} lacks ranges for {sorted(missing)}"
            )
        return ResourcePage(
            vsite=self._vsite,
            architecture=self._architecture,
            operating_system=self._operating_system,
            peak_gflops=self._peak_gflops,
            ranges=dict(self._ranges),
            software=self._software,
        )

    def publish_asn1(self) -> bytes:
        """Publish and encode in one step (what actually ships to the JPA)."""
        return self.publish().to_asn1()
