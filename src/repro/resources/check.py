"""Request-versus-page validation.

The JPA uses the resource page "supporting the user in creating a job
suitable for the selected destination system" (paper section 5.4) — i.e.
it checks resource requests against the page before consigning, and the
NJS re-checks on arrival (defense in depth: the page the client saw may
be stale).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resources.model import RESOURCE_AXES, ResourceRequest
from repro.resources.page import ResourcePage

__all__ = ["ResourceCheckResult", "check_request"]


@dataclass(slots=True)
class ResourceCheckResult:
    """Outcome of checking a request against a page."""

    vsite: str
    violations: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def summary(self) -> str:
        if self.ok:
            return f"request acceptable at {self.vsite}"
        return f"request rejected at {self.vsite}: " + "; ".join(self.violations)


def check_request(
    page: ResourcePage,
    request: ResourceRequest,
    required_software: list[tuple[str, str]] | None = None,
) -> ResourceCheckResult:
    """Check every axis of ``request`` against ``page`` limits.

    Parameters
    ----------
    required_software:
        Optional ``(kind, name)`` pairs the job needs (e.g.
        ``[("compiler", "f90")]`` for a compile task).

    Returns a result listing *all* violations, not just the first — the
    JPA shows them to the user together.
    """
    result = ResourceCheckResult(vsite=page.vsite)
    for axis in RESOURCE_AXES:
        value = getattr(request, axis)
        rng = page.ranges[axis]
        if value < rng.minimum:
            result.violations.append(
                f"{axis}={value} below minimum {rng.minimum}"
            )
        elif value > rng.maximum:
            result.violations.append(
                f"{axis}={value} above maximum {rng.maximum}"
            )
    for kind, name in required_software or []:
        if not page.software.has(kind, name):
            result.violations.append(f"missing {kind} {name!r}")
    return result
