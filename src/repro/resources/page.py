"""The per-Vsite resource page.

Paper section 5.4: "Each UNICORE site provides a so called resource page
reflecting resource information about their Vsites.  Besides minimum and
maximum values for the resources needed for batch submission it contains
information about the system architecture, performance, and operating
system as well as available application and system software."
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.resources import asn1
from repro.resources.errors import ResourcePageError
from repro.resources.model import RESOURCE_AXES, ResourceRange
from repro.resources.software import SoftwareCatalogue, SoftwareItem

__all__ = ["ResourcePage"]


@dataclass(slots=True)
class ResourcePage:
    """Everything the JPA needs to know about one Vsite.

    Attributes
    ----------
    vsite:
        Name of the virtual site this page describes.
    architecture / operating_system:
        Free-text system identification (e.g. ``"Cray T3E"`` / ``"UNICOS/mk"``).
    peak_gflops:
        Advertised performance figure.
    ranges:
        Per-axis :class:`ResourceRange` limits for batch submission.
    software:
        The installed compilers / libraries / packages.
    """

    vsite: str
    architecture: str
    operating_system: str
    peak_gflops: float
    ranges: dict[str, ResourceRange]
    software: SoftwareCatalogue = field(default_factory=SoftwareCatalogue)

    def __post_init__(self) -> None:
        if not self.vsite:
            raise ResourcePageError("resource page requires a vsite name")
        missing = set(RESOURCE_AXES) - set(self.ranges)
        if missing:
            raise ResourcePageError(f"resource page missing axes {sorted(missing)}")
        unknown = set(self.ranges) - set(RESOURCE_AXES)
        if unknown:
            raise ResourcePageError(f"resource page has unknown axes {sorted(unknown)}")

    # -- ASN.1 persistence -----------------------------------------------------
    def to_asn1(self) -> bytes:
        """Encode this page in the ASN.1 format of the paper."""
        payload = {
            "vsite": self.vsite,
            "architecture": self.architecture,
            "operating_system": self.operating_system,
            "peak_gflops": float(self.peak_gflops),
            "ranges": {
                axis: [float(r.minimum), float(r.maximum)]
                for axis, r in self.ranges.items()
            },
            "software": [
                {
                    "kind": item.kind,
                    "name": item.name,
                    "version": item.version,
                    "invocation": item.invocation,
                }
                for item in self.software
            ],
        }
        return asn1.encode(payload)

    @classmethod
    def from_asn1(cls, data: bytes) -> "ResourcePage":
        """Decode a page written by :meth:`to_asn1`."""
        raw = asn1.decode(data)
        if not isinstance(raw, dict):
            raise ResourcePageError("resource page must decode to a map")
        try:
            ranges = {
                axis: ResourceRange(minimum=lo, maximum=hi)
                for axis, (lo, hi) in raw["ranges"].items()
            }
            software = SoftwareCatalogue(
                [
                    SoftwareItem(
                        kind=entry["kind"],
                        name=entry["name"],
                        version=entry["version"],
                        invocation=entry["invocation"],
                    )
                    for entry in raw["software"]
                ]
            )
            return cls(
                vsite=raw["vsite"],
                architecture=raw["architecture"],
                operating_system=raw["operating_system"],
                peak_gflops=raw["peak_gflops"],
                ranges=ranges,
                software=software,
            )
        except (KeyError, TypeError, ValueError) as err:
            raise ResourcePageError(f"malformed resource page: {err}") from err

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ResourcePage):
            return NotImplemented
        return (
            self.vsite == other.vsite
            and self.architecture == other.architecture
            and self.operating_system == other.operating_system
            and self.peak_gflops == other.peak_gflops
            and self.ranges == other.ranges
            and self.software == other.software
        )
