"""Resource description model (paper section 5.4).

UNICORE's resource model is deliberately simple: a batch request names
the number of CPUs, execution time, memory, and permanent plus temporary
disk space.  Each Vsite publishes a *resource page* — min/max values for
those resources plus system architecture, performance, operating system,
and available software — prepared by the site administrator with a
resource-page editor and stored in ASN.1 for the JPA to embed in the GUI.

- :mod:`repro.resources.model` — :class:`ResourceSet`,
  :class:`ResourceRequest`, :class:`ResourceRange`;
- :mod:`repro.resources.software` — compilers/libraries/packages;
- :mod:`repro.resources.page` — the per-Vsite resource page;
- :mod:`repro.resources.asn1` — a minimal DER-style encoder the pages
  are stored in;
- :mod:`repro.resources.editor` — the administrator's page editor;
- :mod:`repro.resources.check` — request-versus-page validation.
"""

from repro.resources.model import ResourceRange, ResourceRequest, ResourceSet
from repro.resources.software import SoftwareCatalogue, SoftwareItem, SoftwareKind
from repro.resources.page import ResourcePage
from repro.resources.editor import ResourcePageEditor
from repro.resources.check import ResourceCheckResult, check_request
from repro.resources.errors import ResourceError, ResourcePageError, ResourceRequestError

__all__ = [
    "ResourceCheckResult",
    "ResourceError",
    "ResourcePage",
    "ResourcePageEditor",
    "ResourcePageError",
    "ResourceRange",
    "ResourceRequest",
    "ResourceRequestError",
    "ResourceSet",
    "SoftwareCatalogue",
    "SoftwareItem",
    "SoftwareKind",
    "check_request",
]
