"""A minimal ASN.1 DER-style encoder/decoder.

Paper section 5.4: the resource page "is stored in ASN1 format for the
JPA to include it into the GUI".  This module implements the small subset
of DER (definite-length, tag-length-value) needed to serialize resource
pages: booleans, integers, reals (as ISO-6093 decimal strings, the way
ASN.1 REAL base-10 works), UTF-8 strings, nulls, sequences, and maps
(encoded as a sequence of key/value pairs).

The encoding round-trips arbitrarily nested Python structures built from
``bool``, ``int``, ``float``, ``str``, ``None``, ``list`` and ``dict``
(string keys).
"""

from __future__ import annotations

import typing

from repro.resources.errors import ResourcePageError

__all__ = ["encode", "decode"]

# DER universal tags (SEQUENCE with constructed bit set).
_TAG_BOOL = 0x01
_TAG_INT = 0x02
_TAG_NULL = 0x05
_TAG_REAL = 0x09
_TAG_UTF8 = 0x0C
_TAG_SEQ = 0x30
# Private tag for maps (context-specific, constructed).
_TAG_MAP = 0xA0

Value = typing.Union[bool, int, float, str, None, list, dict]


def _encode_length(n: int) -> bytes:
    """DER definite-length encoding."""
    if n < 0x80:
        return bytes([n])
    body = n.to_bytes((n.bit_length() + 7) // 8, "big")
    return bytes([0x80 | len(body)]) + body


def _tlv(tag: int, content: bytes) -> bytes:
    return bytes([tag]) + _encode_length(len(content)) + content


def encode(value: Value) -> bytes:
    """Encode ``value`` into DER-style bytes."""
    # bool must be tested before int (bool is a subclass of int).
    if value is None:
        return _tlv(_TAG_NULL, b"")
    if isinstance(value, bool):
        return _tlv(_TAG_BOOL, b"\xff" if value else b"\x00")
    if isinstance(value, int):
        length = max(1, (value.bit_length() + 8) // 8)  # room for sign bit
        return _tlv(_TAG_INT, value.to_bytes(length, "big", signed=True))
    if isinstance(value, float):
        # ASN.1 REAL, base-10 form (ISO 6093 NR3): decimal text.
        return _tlv(_TAG_REAL, repr(value).encode("ascii"))
    if isinstance(value, str):
        return _tlv(_TAG_UTF8, value.encode("utf-8"))
    if isinstance(value, list):
        return _tlv(_TAG_SEQ, b"".join(encode(v) for v in value))
    if isinstance(value, dict):
        parts = []
        for key in sorted(value):
            if not isinstance(key, str):
                raise ResourcePageError(f"map keys must be strings, got {key!r}")
            parts.append(encode(key))
            parts.append(encode(value[key]))
        return _tlv(_TAG_MAP, b"".join(parts))
    raise ResourcePageError(f"cannot ASN.1-encode {type(value).__name__}")


def _read_length(data: bytes, offset: int) -> tuple[int, int]:
    """Return (length, offset-after-length-octets)."""
    if offset >= len(data):
        raise ResourcePageError("truncated ASN.1: missing length")
    first = data[offset]
    offset += 1
    if first < 0x80:
        return first, offset
    n_octets = first & 0x7F
    if n_octets == 0 or offset + n_octets > len(data):
        raise ResourcePageError("truncated or indefinite ASN.1 length")
    return int.from_bytes(data[offset : offset + n_octets], "big"), offset + n_octets


def _decode_at(data: bytes, offset: int) -> tuple[Value, int]:
    if offset >= len(data):
        raise ResourcePageError("truncated ASN.1: missing tag")
    tag = data[offset]
    length, body_start = _read_length(data, offset + 1)
    body_end = body_start + length
    if body_end > len(data):
        raise ResourcePageError("truncated ASN.1: content shorter than length")
    body = data[body_start:body_end]

    if tag == _TAG_NULL:
        if body:
            raise ResourcePageError("NULL with non-empty content")
        return None, body_end
    if tag == _TAG_BOOL:
        if len(body) != 1:
            raise ResourcePageError("BOOLEAN must be one octet")
        return body != b"\x00", body_end
    if tag == _TAG_INT:
        if not body:
            raise ResourcePageError("INTEGER with empty content")
        return int.from_bytes(body, "big", signed=True), body_end
    if tag == _TAG_REAL:
        try:
            return float(body.decode("ascii")), body_end
        except (UnicodeDecodeError, ValueError) as err:
            raise ResourcePageError(f"malformed REAL: {err}") from err
    if tag == _TAG_UTF8:
        try:
            return body.decode("utf-8"), body_end
        except UnicodeDecodeError as err:
            raise ResourcePageError(f"malformed UTF8String: {err}") from err
    if tag == _TAG_SEQ:
        items = []
        pos = 0
        while pos < len(body):
            item, pos = _decode_at(body, pos)
            items.append(item)
        return items, body_end
    if tag == _TAG_MAP:
        result: dict[str, Value] = {}
        pos = 0
        while pos < len(body):
            key, pos = _decode_at(body, pos)
            if pos >= len(body):
                raise ResourcePageError("map with dangling key")
            if not isinstance(key, str):
                raise ResourcePageError(f"map key must decode to str, got {key!r}")
            val, pos = _decode_at(body, pos)
            result[key] = val
        return result, body_end
    raise ResourcePageError(f"unknown ASN.1 tag {tag:#04x}")


def decode(data: bytes) -> Value:
    """Decode DER-style bytes produced by :func:`encode`."""
    value, end = _decode_at(data, 0)
    if end != len(data):
        raise ResourcePageError(f"{len(data) - end} trailing bytes after ASN.1 value")
    return value
