"""Software resources: compilers, libraries, and program packages.

Paper section 5.4: the resource model "contains the main resources a user
needs for batch job specification and information about available
software (compilers, libraries, program packages)."
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.resources.errors import ResourcePageError

__all__ = ["SoftwareKind", "SoftwareItem", "SoftwareCatalogue"]


class SoftwareKind:
    """The three software categories of the paper's resource model."""

    COMPILER = "compiler"
    LIBRARY = "library"
    PACKAGE = "package"

    ALL = (COMPILER, LIBRARY, PACKAGE)


@dataclass(frozen=True, slots=True)
class SoftwareItem:
    """One installed software item, e.g. ``compiler f90 3.1``.

    ``invocation`` is the site-local command the translation tables map
    abstract tasks onto (e.g. ``f90`` on the T3E but ``xlf90`` on the SP-2).
    """

    kind: str
    name: str
    version: str = ""
    invocation: str = ""

    def __post_init__(self) -> None:
        if self.kind not in SoftwareKind.ALL:
            raise ResourcePageError(f"unknown software kind {self.kind!r}")
        if not self.name:
            raise ResourcePageError("software item needs a name")

    @property
    def key(self) -> tuple[str, str]:
        return (self.kind, self.name)


class SoftwareCatalogue:
    """The software installed at one Vsite, queryable by kind and name."""

    def __init__(self, items: list[SoftwareItem] | None = None) -> None:
        self._items: dict[tuple[str, str], SoftwareItem] = {}
        for item in items or []:
            self.add(item)

    def add(self, item: SoftwareItem) -> None:
        if item.key in self._items:
            raise ResourcePageError(
                f"duplicate software item {item.kind}/{item.name}"
            )
        self._items[item.key] = item

    def has(self, kind: str, name: str) -> bool:
        return (kind, name) in self._items

    def get(self, kind: str, name: str) -> SoftwareItem:
        try:
            return self._items[(kind, name)]
        except KeyError:
            raise ResourcePageError(
                f"no {kind} named {name!r} in catalogue"
            ) from None

    def compilers(self) -> list[SoftwareItem]:
        return self.by_kind(SoftwareKind.COMPILER)

    def by_kind(self, kind: str) -> list[SoftwareItem]:
        return sorted(
            (i for i in self._items.values() if i.kind == kind),
            key=lambda i: i.name,
        )

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        return iter(sorted(self._items.values(), key=lambda i: i.key))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SoftwareCatalogue):
            return NotImplemented
        return self._items == other._items
