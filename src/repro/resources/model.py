"""Resource quantities: sets, requests, and ranges.

The paper (section 5.4): "UNICORE supports resource requests for the
number of CPUs (or processor elements), the amount of execution time, the
amount of memory, and the amount of disk space needed, both permanent and
temporary."  Those five quantities are the axes of everything here.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.resources.errors import ResourceRequestError

__all__ = ["ResourceSet", "ResourceRequest", "ResourceRange", "RESOURCE_AXES"]

#: The five resource axes of the UNICORE model, in canonical order.
RESOURCE_AXES = (
    "cpus",
    "time_s",
    "memory_mb",
    "disk_permanent_mb",
    "disk_temporary_mb",
)


@dataclass(frozen=True, slots=True)
class ResourceSet:
    """A concrete quantity on each of the five resource axes."""

    cpus: int = 1
    time_s: float = 3600.0
    memory_mb: float = 128.0
    disk_permanent_mb: float = 0.0
    disk_temporary_mb: float = 0.0

    def __post_init__(self) -> None:
        if self.cpus < 0:
            raise ResourceRequestError("cpus must be non-negative")
        for axis in ("time_s", "memory_mb", "disk_permanent_mb", "disk_temporary_mb"):
            if getattr(self, axis) < 0:
                raise ResourceRequestError(f"{axis} must be non-negative")

    def as_dict(self) -> dict[str, float]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def __add__(self, other: "ResourceSet") -> "ResourceSet":
        return ResourceSet(
            cpus=self.cpus + other.cpus,
            time_s=max(self.time_s, other.time_s),
            memory_mb=self.memory_mb + other.memory_mb,
            disk_permanent_mb=self.disk_permanent_mb + other.disk_permanent_mb,
            disk_temporary_mb=self.disk_temporary_mb + other.disk_temporary_mb,
        )

    def fits_within(self, other: "ResourceSet") -> bool:
        """True if every axis of self is ≤ the corresponding axis of other."""
        return all(
            getattr(self, axis) <= getattr(other, axis) for axis in RESOURCE_AXES
        )


@dataclass(frozen=True, slots=True)
class ResourceRequest(ResourceSet):
    """What the user asks for during job preparation in the JPA.

    Identical axes to :class:`ResourceSet`; the distinct type records
    *intent* (a demand, not an endowment) at API boundaries.
    """

    @classmethod
    def from_dict(cls, d: dict) -> "ResourceRequest":
        unknown = set(d) - set(RESOURCE_AXES)
        if unknown:
            raise ResourceRequestError(f"unknown resource axes {sorted(unknown)}")
        return cls(**{k: (int(v) if k == "cpus" else float(v)) for k, v in d.items()})


@dataclass(frozen=True, slots=True)
class ResourceRange:
    """Inclusive [minimum, maximum] bounds for one resource axis."""

    minimum: float
    maximum: float

    def __post_init__(self) -> None:
        if self.minimum < 0:
            raise ResourceRequestError("range minimum must be non-negative")
        if self.maximum < self.minimum:
            raise ResourceRequestError(
                f"range maximum {self.maximum} below minimum {self.minimum}"
            )

    def contains(self, value: float) -> bool:
        return self.minimum <= value <= self.maximum

    def clamp(self, value: float) -> float:
        return min(max(value, self.minimum), self.maximum)
