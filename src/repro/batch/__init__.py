"""Batch subsystems: the third tier of the architecture.

Paper section 4.3: "The third tier contains the destination systems with
their batch systems and data storage."  UNICORE's production systems were
Cray T3E, Fujitsu VPP/700, IBM SP-2, and NEC SX-4 (section 5.7), each
running its vendor batch system; the NJS's translation tables emit job
scripts in the local dialect and submit them like any other batch job
(site autonomy, section 5.5).

This package simulates those systems as discrete-event queueing machines:

- :mod:`repro.batch.base` — job specs, records, queues, and the
  :class:`BatchSystem` engine (submission, scheduling passes, execution,
  output collection);
- :mod:`repro.batch.scheduling` — FCFS and EASY-backfill policies;
- :mod:`repro.batch.dialects` — the vendor script dialects (NQS,
  LoadLeveler, VPP, and Codine for the NJS-internal layer);
- :mod:`repro.batch.machines` — the machine catalogue of the six German
  UNICORE sites.
"""

from repro.batch.errors import (
    BatchError,
    JobRejectedError,
    UnknownJobError,
    UnknownQueueError,
)
from repro.batch.base import (
    BatchJobRecord,
    BatchJobSpec,
    BatchState,
    BatchSystem,
    FileEffect,
    QueueConfig,
)
from repro.batch.scheduling import BackfillScheduler, FCFSScheduler
from repro.batch.dialects import (
    CodineDialect,
    Dialect,
    LoadLevelerDialect,
    NQSDialect,
    VPPDialect,
    dialect_for,
)
from repro.batch.machines import MachineConfig, PAPER_MACHINES, machine

__all__ = [
    "BackfillScheduler",
    "BatchError",
    "BatchJobRecord",
    "BatchJobSpec",
    "BatchState",
    "BatchSystem",
    "CodineDialect",
    "Dialect",
    "FCFSScheduler",
    "FileEffect",
    "JobRejectedError",
    "LoadLevelerDialect",
    "MachineConfig",
    "NQSDialect",
    "PAPER_MACHINES",
    "QueueConfig",
    "UnknownJobError",
    "UnknownQueueError",
    "VPPDialect",
    "dialect_for",
    "machine",
]
