"""Machine catalogue: the systems of the six German UNICORE sites.

Paper section 5.7: "UNICORE is running at different German sites
including the Forschungszentrum Jülich (FZ Jülich), the Computing Centers
of the universities of Stuttgart (RUS) and Karlsruhe (RUKA), the Leibniz
Computing Center ... in Munich (LRZ), the Konrad-Zuse Zentrum ... in
Berlin (ZIB), and the Deutscher Wetterdienst in Offenbach (DWD).  The
systems covered are Cray T3E, Fujitsu VPP/700, IBM SP-2, and NEC SX-4."

Configurations are period-plausible; what matters for the reproduction is
their *heterogeneity* — different CPU counts, memory, dialects — which is
exactly what seamlessness has to hide.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MachineConfig", "PAPER_MACHINES", "machine"]


@dataclass(frozen=True, slots=True)
class MachineConfig:
    """Static description of one execution host."""

    name: str
    architecture: str
    operating_system: str
    cpus: int
    memory_per_cpu_mb: float
    peak_gflops: float
    #: Vendor batch dialect key (see :func:`repro.batch.dialects.dialect_for`).
    dialect: str
    #: Relative per-CPU speed factor (1.0 = T3E baseline) used to scale
    #: task runtimes across architectures.
    speed_factor: float = 1.0

    @property
    def total_memory_mb(self) -> float:
        return self.cpus * self.memory_per_cpu_mb


PAPER_MACHINES: dict[str, MachineConfig] = {
    "FZJ-T3E": MachineConfig(
        name="FZJ-T3E",
        architecture="Cray T3E-900",
        operating_system="UNICOS/mk",
        cpus=512,
        memory_per_cpu_mb=128.0,
        peak_gflops=460.0,
        dialect="nqs",
        speed_factor=1.0,
    ),
    "RUS-T3E": MachineConfig(
        name="RUS-T3E",
        architecture="Cray T3E-900",
        operating_system="UNICOS/mk",
        cpus=512,
        memory_per_cpu_mb=128.0,
        peak_gflops=460.0,
        dialect="nqs",
        speed_factor=1.0,
    ),
    "RUKA-SP2": MachineConfig(
        name="RUKA-SP2",
        architecture="IBM SP-2",
        operating_system="AIX",
        cpus=256,
        memory_per_cpu_mb=256.0,
        peak_gflops=110.0,
        dialect="loadleveler",
        speed_factor=0.8,
    ),
    "ZIB-SP2": MachineConfig(
        name="ZIB-SP2",
        architecture="IBM SP-2",
        operating_system="AIX",
        cpus=192,
        memory_per_cpu_mb=256.0,
        peak_gflops=85.0,
        dialect="loadleveler",
        speed_factor=0.8,
    ),
    "LRZ-VPP": MachineConfig(
        name="LRZ-VPP",
        architecture="Fujitsu VPP/700",
        operating_system="UXP/V",
        cpus=52,
        memory_per_cpu_mb=2048.0,
        peak_gflops=115.0,
        dialect="vpp",
        speed_factor=4.0,  # vector CPUs
    ),
    "DWD-SX4": MachineConfig(
        name="DWD-SX4",
        architecture="NEC SX-4",
        operating_system="SUPER-UX",
        cpus=32,
        memory_per_cpu_mb=4096.0,
        peak_gflops=64.0,
        dialect="nqs",
        speed_factor=5.0,  # vector CPUs
    ),
}


def machine(name: str) -> MachineConfig:
    """Look up a paper machine by name."""
    try:
        return PAPER_MACHINES[name]
    except KeyError:
        raise KeyError(
            f"unknown machine {name!r}; available: {sorted(PAPER_MACHINES)}"
        ) from None
