"""Space-sharing schedulers: FCFS and EASY backfill.

The paper leaves destination-system scheduling entirely to the sites
(section 5.5), so the simulator must provide realistic local policies:
plain first-come-first-served, and EASY backfill (aggressive backfill
with one reservation for the queue head) — the policy of the era's IBM
SP-2 installations.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.batch.base import BatchJobRecord

__all__ = ["FCFSScheduler", "BackfillScheduler"]


class FCFSScheduler:
    """Start pending jobs strictly in arrival order; head-of-line blocks."""

    name = "fcfs"

    def select(
        self,
        pending: "list[BatchJobRecord]",
        free_cpus: int,
        now: float,
        running: "list[BatchJobRecord]",
    ) -> "list[BatchJobRecord]":
        started = []
        for record in pending:
            need = record.spec.resources.cpus
            if need <= free_cpus:
                started.append(record)
                free_cpus -= need
            else:
                break
        return started


class BackfillScheduler:
    """EASY backfill: FCFS plus jobs that cannot delay the queue head.

    When the head job does not fit, compute its *shadow time* (earliest
    start given running jobs' requested limits) and the *extra* CPUs spare
    at that moment; a later job may backfill if it fits now and either
    finishes (by its requested limit) before the shadow time or uses no
    more than the extra CPUs.
    """

    name = "easy-backfill"

    def select(
        self,
        pending: "list[BatchJobRecord]",
        free_cpus: int,
        now: float,
        running: "list[BatchJobRecord]",
    ) -> "list[BatchJobRecord]":
        started: "list[BatchJobRecord]" = []
        queue = list(pending)

        # Greedy FCFS prefix.
        while queue and queue[0].spec.resources.cpus <= free_cpus:
            record = queue.pop(0)
            started.append(record)
            free_cpus -= record.spec.resources.cpus
        if not queue:
            return started

        head = queue[0]
        shadow_time, extra_cpus = self._reservation(
            head, free_cpus, now, running + started
        )

        for record in queue[1:]:
            need = record.spec.resources.cpus
            if need > free_cpus:
                continue
            projected_end = now + record.spec.resources.time_s
            if projected_end <= shadow_time or need <= extra_cpus:
                started.append(record)
                free_cpus -= need
                if need > extra_cpus:
                    pass  # consumed only pre-shadow capacity
                else:
                    extra_cpus -= need
        return started

    @staticmethod
    def _reservation(
        head: "BatchJobRecord",
        free_cpus: int,
        now: float,
        running: "list[BatchJobRecord]",
    ) -> tuple[float, int]:
        """(earliest head start, CPUs spare at that time beyond head's need)."""
        need = head.spec.resources.cpus
        # Releases ordered by requested-limit end time.
        releases = sorted(
            (
                (
                    (r.start_time if r.start_time is not None else now)
                    + r.spec.resources.time_s,
                    r.spec.resources.cpus,
                )
                for r in running
            ),
        )
        available = free_cpus
        for end_time, cpus in releases:
            available += cpus
            if available >= need:
                return end_time, available - need
        # Head can never start (should have been rejected at submit).
        return float("inf"), 0
