"""Vendor batch-script dialects.

The NJS must "translate the abstract specifications into the local system
specific nomenclature using translation tables" (section 5.5).  A
:class:`Dialect` is the target of that translation: it renders resource
directives in the vendor's syntax, names the vendor's job states, and can
*parse its own headers back* — which is how the batch-system simulator
verifies that an incarnated script really is in the local dialect (a
wrong-dialect submission is rejected exactly like a malformed script on a
real system).

Dialects implemented: NQS (Cray T3E / NEC SX-4), LoadLeveler (IBM SP-2),
the VPP queueing system (Fujitsu VPP/700), and Codine — "the resource
management system Codine provided by Genias Software GmbH" used *inside*
the NJS (section 5.1).
"""

from __future__ import annotations

from repro.batch.errors import BatchError
from repro.resources.model import ResourceSet

__all__ = [
    "Dialect",
    "NQSDialect",
    "LoadLevelerDialect",
    "VPPDialect",
    "CodineDialect",
    "dialect_for",
]


class Dialect:
    """Base class: renders and parses vendor resource directives."""

    #: Registry key and human name; subclasses set these.
    key = "abstract"
    display_name = "Abstract"
    #: Local state names, in lifecycle order (queued, running, done, failed).
    state_names: tuple[str, str, str, str] = ("QUEUED", "RUNNING", "DONE", "FAILED")

    def directive_prefix(self) -> str:
        raise NotImplementedError

    def render_directives(
        self, job_name: str, queue: str, resources: ResourceSet
    ) -> list[str]:
        """The header lines of a job script in this dialect."""
        raise NotImplementedError

    def render_script(
        self,
        job_name: str,
        queue: str,
        resources: ResourceSet,
        body_lines: list[str],
    ) -> str:
        header = ["#!/bin/sh"] + self.render_directives(job_name, queue, resources)
        return "\n".join(header + list(body_lines)) + "\n"

    def parse_directives(self, script: str) -> dict[str, str]:
        """Extract ``directive -> value`` pairs from a script's header.

        Raises :class:`BatchError` if no directive of this dialect appears
        — the "wrong dialect submitted" failure mode.
        """
        prefix = self.directive_prefix()
        found: dict[str, str] = {}
        for line in script.splitlines():
            if not line.startswith(prefix):
                continue
            rest = line[len(prefix):].strip()
            if not rest:
                continue
            key, _, value = rest.partition(" ")
            found[key] = value.strip()
        if not found:
            raise BatchError(
                f"script contains no {self.display_name} directives "
                f"(expected lines starting with {prefix!r})"
            )
        return found

    def local_state(self, phase: str) -> str:
        """Map a uniform phase (queued/running/done/failed) to the local name."""
        mapping = dict(
            zip(("queued", "running", "done", "failed"), self.state_names,
                strict=True)
        )
        try:
            return mapping[phase]
        except KeyError:
            raise BatchError(f"unknown phase {phase!r}") from None


class NQSDialect(Dialect):
    """NQS, as on the Cray T3E (UNICOS/mk) and NEC SX-4 (SUPER-UX)."""

    key = "nqs"
    display_name = "NQS"
    state_names = ("QUEUED", "RUNNING", "EXITING", "ABORTED")

    def directive_prefix(self) -> str:
        return "#QSUB"

    def render_directives(self, job_name, queue, resources):
        return [
            f"#QSUB -r {job_name}",
            f"#QSUB -q {queue}",
            f"#QSUB -lP {resources.cpus}",
            f"#QSUB -lT {int(resources.time_s)}",
            f"#QSUB -lM {int(resources.memory_mb)}mb",
        ]


class LoadLevelerDialect(Dialect):
    """IBM LoadLeveler, as on the SP-2 (AIX)."""

    key = "loadleveler"
    display_name = "LoadLeveler"
    state_names = ("Idle", "Running", "Completed", "Removed")

    def directive_prefix(self) -> str:
        return "#@"

    def render_directives(self, job_name, queue, resources):
        return [
            f"#@ job_name = {job_name}",
            f"#@ class = {queue}",
            f"#@ node = {resources.cpus}",
            f"#@ wall_clock_limit = {int(resources.time_s)}",
            f"#@ resources = ConsumableMemory({int(resources.memory_mb)}mb)",
            "#@ queue",
        ]

    def parse_directives(self, script: str) -> dict[str, str]:
        found: dict[str, str] = {}
        for line in script.splitlines():
            if not line.startswith("#@"):
                continue
            rest = line[2:].strip()
            key, _, value = rest.partition("=")
            found[key.strip()] = value.strip()
        if not found:
            raise BatchError(
                "script contains no LoadLeveler directives (expected '#@ ...')"
            )
        return found


class VPPDialect(Dialect):
    """The Fujitsu VPP/700 queueing system (UXP/V)."""

    key = "vpp"
    display_name = "VPP"
    state_names = ("QUE", "RUN", "END", "ERR")

    def directive_prefix(self) -> str:
        return "#PJM"

    def render_directives(self, job_name, queue, resources):
        return [
            f"#PJM -N {job_name}",
            f"#PJM -q {queue}",
            f"#PJM -p {resources.cpus}",
            f"#PJM -t {int(resources.time_s)}",
            f"#PJM -m {int(resources.memory_mb)}",
        ]


class CodineDialect(Dialect):
    """Codine (Genias Software), used inside the NJS (section 5.1)."""

    key = "codine"
    display_name = "Codine"
    state_names = ("qw", "r", "d", "Eqw")

    def directive_prefix(self) -> str:
        return "#$"

    def render_directives(self, job_name, queue, resources):
        return [
            f"#$ -N {job_name}",
            f"#$ -q {queue}",
            f"#$ -pe mpi {resources.cpus}",
            f"#$ -l h_rt={int(resources.time_s)}",
            f"#$ -l h_vmem={int(resources.memory_mb)}M",
        ]


_DIALECTS: dict[str, Dialect] = {
    d.key: d for d in (NQSDialect(), LoadLevelerDialect(), VPPDialect(), CodineDialect())
}


def dialect_for(key: str) -> Dialect:
    """The (stateless, shared) dialect instance for ``key``."""
    try:
        return _DIALECTS[key]
    except KeyError:
        raise BatchError(
            f"unknown dialect {key!r}; available: {sorted(_DIALECTS)}"
        ) from None
