"""Exceptions for the batch subsystems."""

__all__ = ["BatchError", "UnknownQueueError", "JobRejectedError", "UnknownJobError"]


class BatchError(Exception):
    """Base class for batch-system errors."""


class UnknownQueueError(BatchError):
    """The named queue does not exist on this system."""


class JobRejectedError(BatchError):
    """The job violates queue limits or machine capacity."""


class UnknownJobError(BatchError):
    """No job with that identifier is known to this system."""
