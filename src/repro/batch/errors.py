"""Exceptions for the batch subsystems."""

from repro.errors import ReproError

__all__ = [
    "BatchError",
    "UnknownQueueError",
    "JobRejectedError",
    "UnknownJobError",
    "SystemOfflineError",
]


class BatchError(ReproError):
    """Base class for batch-system errors."""

    code = "batch.error"


class UnknownQueueError(BatchError):
    """The named queue does not exist on this system."""

    code = "batch.unknown_queue"


class JobRejectedError(BatchError):
    """The job violates queue limits or machine capacity."""

    code = "batch.rejected"


class UnknownJobError(BatchError):
    """No job with that identifier is known to this system."""

    code = "batch.unknown_job"


class SystemOfflineError(BatchError):
    """The batch system is down for the moment; submission was refused.

    Unlike :class:`JobRejectedError` this is *transient* — the NJS's
    task-retry loop resubmits after a delay instead of failing the task.
    """

    code = "batch.offline"
