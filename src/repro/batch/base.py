"""The batch-system engine: submission, scheduling, execution, collection.

A :class:`BatchSystem` simulates one execution host: named queues with
limits, a CPU pool, a pluggable space-sharing scheduler, and job
execution as simulation processes.  Jobs carry *effects* — files they
create in their working space — so the data-flow of a UNICORE job (object
files, executables, results) is actually materialized, and stdout/stderr
are produced for the NJS to collect (section 5.5).

Site autonomy is enforced by this API: there is no priority parameter, no
reservation call, nothing a middleware could use to influence scheduling
— only ``submit``, ``cancel``, and ``query``, exactly the interface the
paper's NJS has to live with.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from itertools import count

from repro.batch.dialects import dialect_for
from repro.batch.errors import (
    BatchError,
    JobRejectedError,
    SystemOfflineError,
    UnknownJobError,
    UnknownQueueError,
)
from repro.batch.machines import MachineConfig
from repro.batch.scheduling import FCFSScheduler
from repro.observability import telemetry_for
from repro.resources.model import ResourceSet
from repro.simkernel import Event, Interrupt, Simulator

__all__ = [
    "BatchState",
    "FileEffect",
    "QueueConfig",
    "BatchJobSpec",
    "BatchJobRecord",
    "BatchSystem",
]


class BatchState(enum.Enum):
    """Uniform job states (each dialect has local names for them)."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def is_terminal(self) -> bool:
        return self in (BatchState.DONE, BatchState.FAILED, BatchState.CANCELLED)


@dataclass(frozen=True, slots=True)
class FileEffect:
    """A file the job creates in its working space on success."""

    path: str
    size_bytes: int = 0
    content: bytes | None = None

    def materialize(self) -> bytes:
        if self.content is not None:
            return self.content
        return b"\x00" * self.size_bytes


@dataclass(frozen=True, slots=True)
class QueueConfig:
    """One batch queue with its submission limits."""

    name: str
    max_cpus: int
    max_time_s: float
    min_cpus: int = 1

    def admits(self, resources: ResourceSet) -> list[str]:
        """Limit violations (empty list = admitted)."""
        problems = []
        if resources.cpus < self.min_cpus:
            problems.append(
                f"queue {self.name}: {resources.cpus} cpus below minimum "
                f"{self.min_cpus}"
            )
        if resources.cpus > self.max_cpus:
            problems.append(
                f"queue {self.name}: {resources.cpus} cpus above maximum "
                f"{self.max_cpus}"
            )
        if resources.time_s > self.max_time_s:
            problems.append(
                f"queue {self.name}: {resources.time_s}s above time limit "
                f"{self.max_time_s}s"
            )
        return problems


@dataclass(slots=True)
class BatchJobSpec:
    """Everything a batch submission carries.

    ``wallclock_s`` is the job's *actual* runtime (the simulation
    ground-truth); the system enforces the *requested* limit
    ``resources.time_s`` and kills over-runners, as real systems do.
    ``origin`` tags local versus UNICORE-delivered jobs for experiment E8
    — the batch system itself never reads it.
    """

    name: str
    owner: str
    queue: str
    script: str
    resources: ResourceSet
    group: str = "users"
    wallclock_s: float | None = None
    exit_code: int = 0
    effects: tuple[FileEffect, ...] = ()
    stdout_text: str = ""
    stderr_text: str = ""
    workdir: object | None = None
    origin: str = "local"
    #: Trace context from the consigning NJS (empty = untraced).
    trace_id: str = ""
    parent_span_id: str = ""

    @property
    def actual_runtime(self) -> float:
        return self.resources.time_s if self.wallclock_s is None else self.wallclock_s


@dataclass(slots=True)
class BatchJobRecord:
    """The batch system's view of one submitted job."""

    job_id: str
    spec: BatchJobSpec
    state: BatchState = BatchState.QUEUED
    submit_time: float = 0.0
    start_time: float | None = None
    end_time: float | None = None
    exit_code: int | None = None
    reason: str = ""
    completion_event: Event | None = None
    _process: object = None
    _wait_span: object = None
    _run_span: object = None

    @property
    def wait_time(self) -> float | None:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def turnaround(self) -> float | None:
        if self.end_time is None:
            return None
        return self.end_time - self.submit_time


class BatchSystem:
    """One simulated execution host with its vendor batch system."""

    def __init__(
        self,
        sim: Simulator,
        machine: MachineConfig,
        queues: list[QueueConfig] | None = None,
        scheduler=None,
    ) -> None:
        self.sim = sim
        self.machine = machine
        self.dialect = dialect_for(machine.dialect)
        self.scheduler = scheduler or FCFSScheduler()
        qs = queues or [
            QueueConfig(name="batch", max_cpus=machine.cpus, max_time_s=86400.0)
        ]
        self.queues: dict[str, QueueConfig] = {}
        for q in qs:
            if q.name in self.queues:
                raise BatchError(f"duplicate queue {q.name!r}")
            if q.max_cpus > machine.cpus:
                raise BatchError(
                    f"queue {q.name!r} allows {q.max_cpus} cpus but machine "
                    f"{machine.name} has only {machine.cpus}"
                )
            self.queues[q.name] = q

        self.free_cpus = machine.cpus
        self._pending: list[BatchJobRecord] = []
        self._running: dict[str, BatchJobRecord] = {}
        self._records: dict[str, BatchJobRecord] = {}
        self._ids = count(1)
        #: True while the whole system is down (a simulated outage):
        #: submissions are refused, queued jobs wait, nothing starts.
        self.offline = False

        # Utilization accounting: integral of busy CPUs over time.
        self._busy_integral = 0.0
        self._last_account = sim.now

    # -- public batch interface (submit / cancel / query only) -----------------
    def submit(self, spec: BatchJobSpec) -> str:
        """Submit a job script; returns the local job identifier.

        Raises :class:`JobRejectedError` on queue-limit violations and
        :class:`BatchError` if the script is not in this system's dialect.
        """
        if self.offline:
            raise SystemOfflineError(
                f"{self.machine.name} is offline; submission refused"
            )
        queue = self.queues.get(spec.queue)
        if queue is None:
            raise UnknownQueueError(
                f"{self.machine.name}: no queue {spec.queue!r} "
                f"(available: {sorted(self.queues)})"
            )
        problems = queue.admits(spec.resources)
        if spec.resources.cpus > self.machine.cpus:
            problems.append(
                f"{spec.resources.cpus} cpus exceed machine size "
                f"{self.machine.cpus}"
            )
        if spec.resources.memory_mb > self.machine.total_memory_mb:
            problems.append(
                f"{spec.resources.memory_mb}MB exceed machine memory "
                f"{self.machine.total_memory_mb}MB"
            )
        if problems:
            raise JobRejectedError("; ".join(problems))
        # A real batch system would fail on foreign syntax: verify dialect.
        self.dialect.parse_directives(spec.script)

        record = BatchJobRecord(
            job_id=f"{self.machine.name.lower()}.{next(self._ids)}",
            spec=spec,
            submit_time=self.sim.now,
            completion_event=self.sim.event(name=f"completion:{spec.name}"),
        )
        telemetry = telemetry_for(self.sim)
        telemetry.metrics.counter("batch.submitted").inc()
        if spec.trace_id:
            record._wait_span = telemetry.tracer.start_span(
                "batch.wait",
                spec.trace_id,
                parent=spec.parent_span_id or None,
                tier="batch",
                job=spec.name,
                queue=spec.queue,
                machine=self.machine.name,
            )
        self._records[record.job_id] = record
        self._pending.append(record)
        self._schedule_pass()
        return record.job_id

    def cancel(self, job_id: str) -> None:
        """Cancel a queued or running job."""
        record = self.query(job_id)
        if record.state is BatchState.QUEUED:
            self._pending.remove(record)
            self._finish(record, BatchState.CANCELLED, reason="cancelled while queued")
        elif record.state is BatchState.RUNNING:
            record._process.interrupt(cause="cancelled")  # type: ignore[attr-defined]
        elif record.state.is_terminal:
            raise BatchError(f"job {job_id} already terminal ({record.state.value})")

    def query(self, job_id: str) -> BatchJobRecord:
        try:
            return self._records[job_id]
        except KeyError:
            raise UnknownJobError(
                f"{self.machine.name}: unknown job {job_id!r}"
            ) from None

    # -- simulated hardware faults (driven by repro.faults) ----------------
    def fail_job(self, job_id: str, reason: str = "node failure") -> None:
        """Kill one *running* job as a hardware fault (exit code 139).

        Unlike :meth:`cancel` this marks the job FAILED, so the NJS's
        task-retry loop can tell an operator's kill (final) from a dead
        node (worth resubmitting).
        """
        record = self.query(job_id)
        if record.state is not BatchState.RUNNING:
            raise BatchError(
                f"job {job_id} is {record.state.value}; only running jobs "
                "can suffer a node failure"
            )
        telemetry_for(self.sim).metrics.counter("batch.node_failures").inc()
        record._process.interrupt(  # type: ignore[attr-defined]
            cause=("node-failure", reason)
        )

    def set_offline(self, offline: bool) -> None:
        """Take the whole system down (or bring it back).

        Going down node-fails every running job; queued jobs survive the
        outage and are scheduled again once the system returns.
        """
        if offline == self.offline:
            return
        self.offline = offline
        telemetry = telemetry_for(self.sim)
        if offline:
            telemetry.metrics.counter("batch.outages").inc()
            for job_id in sorted(self._running):
                self.fail_job(job_id, reason="node failure (system outage)")
        else:
            self._schedule_pass()

    def running_job_ids(self) -> list[str]:
        """Identifiers of currently running jobs (fault-target picking)."""
        return sorted(self._running)

    def local_state_name(self, job_id: str) -> str:
        """The job's state in the vendor's own nomenclature."""
        record = self.query(job_id)
        phase = {
            BatchState.QUEUED: "queued",
            BatchState.RUNNING: "running",
            BatchState.DONE: "done",
            BatchState.FAILED: "failed",
            BatchState.CANCELLED: "failed",
        }[record.state]
        return self.dialect.local_state(phase)

    # -- introspection ------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        return len(self._pending)

    @property
    def running_count(self) -> int:
        return len(self._running)

    def all_records(self) -> list[BatchJobRecord]:
        return list(self._records.values())

    def utilization(self) -> float:
        """Mean fraction of CPUs busy since t=0."""
        self._account()
        elapsed = self.sim.now
        if elapsed <= 0:
            return 0.0
        return self._busy_integral / (elapsed * self.machine.cpus)

    # -- internals -------------------------------------------------------------------
    def _account(self) -> None:
        busy = self.machine.cpus - self.free_cpus
        self._busy_integral += busy * (self.sim.now - self._last_account)
        self._last_account = self.sim.now

    def _schedule_pass(self) -> None:
        if self.offline:
            return
        startable = self.scheduler.select(
            self._pending, self.free_cpus, self.sim.now, list(self._running.values())
        )
        for record in startable:
            self._start(record)

    def _start(self, record: BatchJobRecord) -> None:
        self._account()
        self._pending.remove(record)
        need = record.spec.resources.cpus
        assert need <= self.free_cpus, "scheduler overcommitted the machine"
        self.free_cpus -= need
        record.state = BatchState.RUNNING
        record.start_time = self.sim.now
        telemetry = telemetry_for(self.sim)
        telemetry.metrics.histogram("batch.wait_seconds").observe(
            record.wait_time or 0.0
        )
        if record._wait_span is not None:
            telemetry.tracer.end_span(record._wait_span)
            record._run_span = telemetry.tracer.start_span(
                "batch.execute",
                record.spec.trace_id,
                parent=record.spec.parent_span_id or None,
                tier="batch",
                job=record.spec.name,
                cpus=record.spec.resources.cpus,
            )
        self._running[record.job_id] = record
        record._process = self.sim.process(
            self._run(record), name=f"run:{record.job_id}"
        )

    def _run(self, record: BatchJobRecord):
        spec = record.spec
        limit = spec.resources.time_s
        runtime = min(spec.actual_runtime, limit)
        over_limit = spec.actual_runtime > limit
        try:
            yield self.sim.timeout(runtime)
        except Interrupt as intr:
            self._release(record)
            cause = intr.cause
            if isinstance(cause, tuple) and cause and cause[0] == "node-failure":
                # The node died under the job: a genuine failure, not an
                # operator decision — exit as a killed process would.
                self._finish(
                    record, BatchState.FAILED, exit_code=139, reason=cause[1]
                )
            else:
                self._finish(
                    record, BatchState.CANCELLED, reason="cancelled by operator"
                )
            self._schedule_pass()
            return
        self._release(record)
        if over_limit:
            self._finish(
                record,
                BatchState.FAILED,
                exit_code=137,
                reason=f"wallclock limit {limit}s exceeded",
            )
        elif spec.exit_code != 0:
            self._collect_output(record)
            self._finish(
                record,
                BatchState.FAILED,
                exit_code=spec.exit_code,
                reason=f"exit code {spec.exit_code}",
            )
        else:
            self._apply_effects(record)
            self._collect_output(record)
            self._finish(record, BatchState.DONE, exit_code=0)
        self._schedule_pass()

    def _release(self, record: BatchJobRecord) -> None:
        self._account()
        self.free_cpus += record.spec.resources.cpus
        del self._running[record.job_id]

    def _apply_effects(self, record: BatchJobRecord) -> None:
        workdir = record.spec.workdir
        if workdir is None:
            return
        for effect in record.spec.effects:
            workdir.write(effect.path, effect.materialize())

    def _collect_output(self, record: BatchJobRecord) -> None:
        workdir = record.spec.workdir
        if workdir is None:
            return
        seq = record.job_id.rsplit(".", 1)[-1]
        stdout = record.spec.stdout_text or f"{record.spec.name}: ok\n"
        workdir.write(f"{record.spec.name}.o{seq}", stdout.encode())
        if record.spec.stderr_text:
            workdir.write(f"{record.spec.name}.e{seq}", record.spec.stderr_text.encode())

    def _finish(
        self,
        record: BatchJobRecord,
        state: BatchState,
        exit_code: int | None = None,
        reason: str = "",
    ) -> None:
        record.state = state
        record.end_time = self.sim.now
        record.exit_code = exit_code
        record.reason = reason
        record._process = None
        telemetry = telemetry_for(self.sim)
        if record.start_time is not None:
            telemetry.metrics.histogram("batch.execute_seconds").observe(
                record.end_time - record.start_time
            )
        failure = None if state is BatchState.DONE else (reason or state.value)
        if record._wait_span is not None and not record._wait_span.finished:
            # Cancelled while queued: the wait span is all there was.
            telemetry.tracer.end_span(record._wait_span, error=failure)
        if record._run_span is not None:
            telemetry.tracer.end_span(
                record._run_span.set(state=state.value), error=failure
            )
        assert record.completion_event is not None
        record.completion_event.succeed(record)
