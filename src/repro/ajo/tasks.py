"""Abstract task objects: the units incarnated into real batch jobs.

Paper section 3: "A task is the unit which boils down to a batch job for
the destination system."  Section 5.4: "An abstract task object (ATO) as
the entity to be translated into a real batch job for a destination
system contains the information about the required resources for the
job."

Two families (Figure 3):

* :class:`ExecuteTask` — computational work: user binaries
  (:class:`UserTask`), existing batch scripts (:class:`ExecuteScriptTask`,
  "to include existing batch applications"), and the compile-link-execute
  support for new applications (:class:`CompileTask`, :class:`LinkTask`;
  "at this point in time the compile is implemented for F90").
* :class:`FileTask` — data movement between the UNICORE data spaces:
  imports into Uspace, exports to Xspace, and Uspace-to-Uspace transfers
  between sites (section 5.6).
"""

from __future__ import annotations

import typing

from repro.ajo.actions import AbstractAction
from repro.ajo.errors import ValidationError
from repro.resources.model import ResourceRequest

__all__ = [
    "AbstractTaskObject",
    "ExecuteTask",
    "UserTask",
    "ExecuteScriptTask",
    "CompileTask",
    "LinkTask",
    "FileTask",
    "ImportTask",
    "ExportTask",
    "TransferTask",
    "FileSpace",
]


class FileSpace:
    """The three data locations of the UNICORE data model (section 4)."""

    #: The user's local machine; its files travel inside the AJO.
    WORKSTATION = "workstation"
    #: Site filesystems outside UNICORE control.
    XSPACE = "xspace"
    #: The UNICORE job space (the job directory the NJS creates).
    USPACE = "uspace"

    ALL = (WORKSTATION, XSPACE, USPACE)


class AbstractTaskObject(AbstractAction):
    """Base class of all tasks; carries the resource requirements."""

    type_tag = "task"

    def __init__(
        self,
        name: str,
        resources: ResourceRequest | None = None,
        action_id: str | None = None,
    ) -> None:
        super().__init__(name, action_id=action_id)
        self.resources = resources or ResourceRequest()

    def to_payload(self) -> dict[str, typing.Any]:
        payload = super().to_payload()
        payload["resources"] = self.resources.as_dict()
        return payload

    def required_software(self) -> list[tuple[str, str]]:
        """``(kind, name)`` software requirements; subclasses extend."""
        return []


# --------------------------------------------------------------- execution
class ExecuteTask(AbstractTaskObject):
    """Base for computational tasks.

    Attributes
    ----------
    environment:
        Abstract environment variables; translation tables may rename them.
    simulated_runtime_s:
        Ground-truth wallclock of the task on the baseline (T3E)
        architecture — what the workload "actually does".  ``None`` means
        the task runs for half its requested time limit.  Incarnation
        scales it by the destination machine's speed factor.
    """

    type_tag = "execute"

    def __init__(
        self,
        name: str,
        resources: ResourceRequest | None = None,
        environment: dict[str, str] | None = None,
        simulated_runtime_s: float | None = None,
        action_id: str | None = None,
    ) -> None:
        super().__init__(name, resources=resources, action_id=action_id)
        self.environment = dict(environment or {})
        if simulated_runtime_s is not None and simulated_runtime_s < 0:
            raise ValidationError("simulated_runtime_s must be non-negative")
        self.simulated_runtime_s = simulated_runtime_s

    def to_payload(self) -> dict[str, typing.Any]:
        payload = super().to_payload()
        payload["environment"] = dict(sorted(self.environment.items()))
        payload["simulated_runtime_s"] = self.simulated_runtime_s
        return payload


class UserTask(ExecuteTask):
    """Run a user-supplied executable already present in the Uspace."""

    type_tag = "user"

    def __init__(
        self,
        name: str,
        executable: str,
        arguments: list[str] | None = None,
        resources: ResourceRequest | None = None,
        environment: dict[str, str] | None = None,
        simulated_runtime_s: float | None = None,
        action_id: str | None = None,
    ) -> None:
        super().__init__(
            name, resources=resources, environment=environment,
            simulated_runtime_s=simulated_runtime_s, action_id=action_id,
        )
        if not executable:
            raise ValidationError("UserTask requires an executable path")
        self.executable = executable
        self.arguments = list(arguments or [])

    def to_payload(self) -> dict[str, typing.Any]:
        payload = super().to_payload()
        payload["executable"] = self.executable
        payload["arguments"] = list(self.arguments)
        return payload


class ExecuteScriptTask(ExecuteTask):
    """Run an existing batch script verbatim (legacy applications)."""

    type_tag = "script"

    def __init__(
        self,
        name: str,
        script: str,
        interpreter: str = "sh",
        resources: ResourceRequest | None = None,
        environment: dict[str, str] | None = None,
        simulated_runtime_s: float | None = None,
        action_id: str | None = None,
    ) -> None:
        super().__init__(
            name, resources=resources, environment=environment,
            simulated_runtime_s=simulated_runtime_s, action_id=action_id,
        )
        if not script:
            raise ValidationError("ExecuteScriptTask requires script text")
        self.script = script
        self.interpreter = interpreter

    def to_payload(self) -> dict[str, typing.Any]:
        payload = super().to_payload()
        payload["script"] = self.script
        payload["interpreter"] = self.interpreter
        return payload


class CompileTask(ExecuteTask):
    """Compile sources with an abstract compiler name (F90 in the prototype)."""

    type_tag = "compile"

    def __init__(
        self,
        name: str,
        sources: list[str],
        compiler: str = "f90",
        options: list[str] | None = None,
        resources: ResourceRequest | None = None,
        environment: dict[str, str] | None = None,
        simulated_runtime_s: float | None = None,
        action_id: str | None = None,
    ) -> None:
        super().__init__(
            name, resources=resources, environment=environment,
            simulated_runtime_s=simulated_runtime_s, action_id=action_id,
        )
        if not sources:
            raise ValidationError("CompileTask requires at least one source file")
        self.sources = list(sources)
        self.compiler = compiler
        self.options = list(options or [])

    def object_files(self) -> list[str]:
        """The object files this compile step produces in the Uspace."""
        return [_replace_suffix(src, ".o") for src in self.sources]

    def required_software(self) -> list[tuple[str, str]]:
        return [("compiler", self.compiler)]

    def to_payload(self) -> dict[str, typing.Any]:
        payload = super().to_payload()
        payload.update(
            sources=list(self.sources),
            compiler=self.compiler,
            options=list(self.options),
        )
        return payload


class LinkTask(ExecuteTask):
    """Link object files into an executable."""

    type_tag = "link"

    def __init__(
        self,
        name: str,
        objects: list[str],
        output: str,
        libraries: list[str] | None = None,
        linker: str = "f90",
        resources: ResourceRequest | None = None,
        environment: dict[str, str] | None = None,
        simulated_runtime_s: float | None = None,
        action_id: str | None = None,
    ) -> None:
        super().__init__(
            name, resources=resources, environment=environment,
            simulated_runtime_s=simulated_runtime_s, action_id=action_id,
        )
        if not objects:
            raise ValidationError("LinkTask requires at least one object file")
        if not output:
            raise ValidationError("LinkTask requires an output executable name")
        self.objects = list(objects)
        self.output = output
        self.libraries = list(libraries or [])
        self.linker = linker

    def required_software(self) -> list[tuple[str, str]]:
        reqs = [("compiler", self.linker)]
        reqs.extend(("library", lib) for lib in self.libraries)
        return reqs

    def to_payload(self) -> dict[str, typing.Any]:
        payload = super().to_payload()
        payload.update(
            objects=list(self.objects),
            output=self.output,
            libraries=list(self.libraries),
            linker=self.linker,
        )
        return payload


# ------------------------------------------------------------- data movement
class FileTask(AbstractTaskObject):
    """Base for data-movement tasks (imports, exports, transfers)."""

    type_tag = "file"

    def __init__(
        self,
        name: str,
        source_path: str,
        destination_path: str,
        resources: ResourceRequest | None = None,
        action_id: str | None = None,
    ) -> None:
        super().__init__(name, resources=resources, action_id=action_id)
        if not source_path or not destination_path:
            raise ValidationError(f"{type(self).__name__} requires both paths")
        self.source_path = source_path
        self.destination_path = destination_path

    def to_payload(self) -> dict[str, typing.Any]:
        payload = super().to_payload()
        payload["source_path"] = self.source_path
        payload["destination_path"] = self.destination_path
        return payload


class ImportTask(FileTask):
    """Bring data *into* the Uspace.

    ``source_space`` is :data:`FileSpace.WORKSTATION` (file rode along
    inside the AJO over https) or :data:`FileSpace.XSPACE` (local copy at
    the Vsite) — the two import sources of section 5.6.
    """

    type_tag = "import"

    def __init__(
        self,
        name: str,
        source_path: str,
        destination_path: str,
        source_space: str = FileSpace.XSPACE,
        resources: ResourceRequest | None = None,
        action_id: str | None = None,
    ) -> None:
        super().__init__(
            name, source_path, destination_path, resources=resources,
            action_id=action_id,
        )
        if source_space not in (FileSpace.WORKSTATION, FileSpace.XSPACE):
            raise ValidationError(
                f"imports come from workstation or xspace, not {source_space!r}"
            )
        self.source_space = source_space

    def to_payload(self) -> dict[str, typing.Any]:
        payload = super().to_payload()
        payload["source_space"] = self.source_space
        return payload


class ExportTask(FileTask):
    """Put Uspace data onto permanent file space (Xspace) at the Vsite."""

    type_tag = "export"


class TransferTask(FileTask):
    """Move data between the Uspaces of two UNICORE sites (NJS–NJS).

    Section 5.6: accomplished "through NJS – NJS communication via the
    gateway ... on the https connection" — the slow path experiment E5
    measures.
    """

    type_tag = "transfer"

    def __init__(
        self,
        name: str,
        source_path: str,
        destination_path: str,
        destination_usite: str,
        resources: ResourceRequest | None = None,
        action_id: str | None = None,
    ) -> None:
        super().__init__(
            name, source_path, destination_path, resources=resources,
            action_id=action_id,
        )
        if not destination_usite:
            raise ValidationError("TransferTask requires a destination Usite")
        self.destination_usite = destination_usite

    def to_payload(self) -> dict[str, typing.Any]:
        payload = super().to_payload()
        payload["destination_usite"] = self.destination_usite
        return payload


def _replace_suffix(path: str, suffix: str) -> str:
    stem, dot, _ = path.rpartition(".")
    return (stem if dot else path) + suffix
