"""Structural validation of a complete AJO.

The JPA validates before consigning; the gateway/NJS re-validate on
arrival (never trust the client).  Checks:

* action ids are unique across the whole tree;
* every job group's dependency graph is acyclic (recursively);
* every job group that directly contains tasks names a destination Vsite;
* the root carries the user DN (the unique UNICORE identification);
* transfer tasks name a destination Usite different from their own.
"""

from __future__ import annotations

from repro.ajo.dag import topological_order
from repro.ajo.errors import ValidationError
from repro.ajo.job import AbstractJobObject
from repro.ajo.tasks import TransferTask

__all__ = ["validate_ajo"]


def validate_ajo(job: AbstractJobObject, *, require_user: bool = True) -> None:
    """Validate the whole AJO tree; raises :class:`ValidationError`.

    Parameters
    ----------
    require_user:
        The root AJO must carry a user DN.  Sub-AJOs forwarded between
        NJSs inherit the user from the root, so recursion disables this.
    """
    if require_user and not job.user_dn:
        raise ValidationError(
            f"root AJO {job.id} carries no user DN; the certificate DN is "
            "the unique UNICORE user identification"
        )

    seen_ids: set[str] = set()
    for action in job.walk():
        if action.id in seen_ids:
            raise ValidationError(f"duplicate action id {action.id} in AJO tree")
        seen_ids.add(action.id)

    _validate_group(job)


def _validate_group(group: AbstractJobObject) -> None:
    if group.tasks() and not group.vsite:
        raise ValidationError(
            f"job group {group.id} ({group.name!r}) contains tasks but "
            "names no destination Vsite"
        )
    # Raises DependencyCycleError (a ValidationError) on cycles.
    topological_order(group)

    for task in group.tasks():
        if isinstance(task, TransferTask) and task.destination_usite == group.usite:
            raise ValidationError(
                f"transfer task {task.id} targets its own Usite "
                f"{group.usite!r}; use an export instead"
            )

    for sub in group.sub_jobs():
        _validate_group(sub)
