"""Structural validation of a complete AJO.

The JPA validates before consigning; the gateway/NJS re-validate on
arrival (never trust the client).  The checks themselves now live in the
:mod:`repro.analysis.structure` pass (diagnostics ``AJO1xx``), so
structural, dataflow, and resource findings share one report format;
:func:`validate_ajo` remains as the historical raise-on-first-error
interface over that pass:

* action ids are unique across the whole tree;
* every job group's dependency graph is acyclic (recursively);
* every job group that directly contains tasks names a destination Vsite;
* the root carries the user DN (the unique UNICORE identification);
* transfer tasks name a destination Usite different from their own.
"""

from __future__ import annotations

from repro.ajo.errors import DependencyCycleError, ValidationError
from repro.ajo.job import AbstractJobObject

__all__ = ["validate_ajo"]


def validate_ajo(job: AbstractJobObject, *, require_user: bool = True) -> None:
    """Validate the whole AJO tree; raises :class:`ValidationError`.

    A thin compatibility wrapper over the structure pass: the first
    error-severity diagnostic becomes the raised exception
    (:class:`DependencyCycleError` for cycles, preserving the historical
    exception types).  Notes and warnings never raise.

    Parameters
    ----------
    require_user:
        The root AJO must carry a user DN.  Sub-AJOs forwarded between
        NJSs inherit the user from the root, so recursion disables this.
    """
    # Imported lazily: repro.analysis depends on this package.
    from repro.analysis.diagnostics import Severity
    from repro.analysis.structure import CODE_CYCLE, structure_pass

    for diag in structure_pass(job, require_user=require_user):
        if diag.severity is not Severity.ERROR:
            continue
        if diag.code == CODE_CYCLE:
            raise DependencyCycleError(diag.message)
        raise ValidationError(diag.message)
