"""Abstract services: job monitoring and control requests.

Figure 3's right branch: ControlService, ListService, QueryService — "the
abstract service for job monitoring" (section 5.3).  Services are
non-recursive actions the JMC sends to an NJS about previously consigned
jobs.
"""

from __future__ import annotations

import typing

from repro.ajo.actions import AbstractAction
from repro.ajo.errors import ValidationError

__all__ = ["AbstractService", "ControlService", "ControlVerb", "ListService", "QueryService"]


class AbstractService(AbstractAction):
    """Base class for monitoring/control services."""

    type_tag = "service"


class ControlVerb:
    """What a ControlService asks the NJS to do to a job."""

    CANCEL = "cancel"
    HOLD = "hold"
    RESUME = "resume"

    ALL = (CANCEL, HOLD, RESUME)


class ControlService(AbstractService):
    """Control a consigned job (cancel / hold / resume)."""

    type_tag = "control"

    def __init__(
        self,
        name: str,
        target_job_id: str,
        verb: str = ControlVerb.CANCEL,
        action_id: str | None = None,
    ) -> None:
        super().__init__(name, action_id=action_id)
        if not target_job_id:
            raise ValidationError("ControlService requires a target job id")
        if verb not in ControlVerb.ALL:
            raise ValidationError(f"unknown control verb {verb!r}")
        self.target_job_id = target_job_id
        self.verb = verb

    def to_payload(self) -> dict[str, typing.Any]:
        payload = super().to_payload()
        payload["target_job_id"] = self.target_job_id
        payload["verb"] = self.verb
        return payload


class ListService(AbstractService):
    """List the requesting user's UNICORE jobs known to this NJS.

    ``since_seq``/``epoch`` carry the client's delta cursor: a server
    with a change-log answers with only the listings that changed after
    ``since_seq`` (within the same log ``epoch``).  The defaults (-1)
    request a full listing, which is also what pre-delta servers send.
    """

    type_tag = "list"

    def __init__(
        self,
        name: str,
        since_seq: int = -1,
        epoch: int = -1,
        action_id: str | None = None,
    ) -> None:
        super().__init__(name, action_id=action_id)
        self.since_seq = int(since_seq)
        self.epoch = int(epoch)

    def to_payload(self) -> dict[str, typing.Any]:
        payload = super().to_payload()
        if self.since_seq >= 0:
            payload["since_seq"] = self.since_seq
            payload["epoch"] = self.epoch
        return payload


class QueryService(AbstractService):
    """Query status and outcomes of one consigned job.

    ``detail`` selects the JMC's "chosen level of detail" (section 5.7):
    job groups only, or down to individual tasks.
    """

    type_tag = "query"

    DETAIL_JOB = "job"
    DETAIL_GROUPS = "groups"
    DETAIL_TASKS = "tasks"
    _DETAILS = (DETAIL_JOB, DETAIL_GROUPS, DETAIL_TASKS)

    def __init__(
        self,
        name: str,
        target_job_id: str,
        detail: str = DETAIL_TASKS,
        subscribe: bool = False,
        hold_s: float = 0.0,
        action_id: str | None = None,
    ) -> None:
        super().__init__(name, action_id=action_id)
        if not target_job_id:
            raise ValidationError("QueryService requires a target job id")
        if detail not in self._DETAILS:
            raise ValidationError(f"unknown detail level {detail!r}")
        if hold_s < 0:
            raise ValidationError("QueryService hold_s must be >= 0")
        self.target_job_id = target_job_id
        self.detail = detail
        #: Completion-event subscription: the server parks the request
        #: until the job reaches a terminal state (or ``hold_s`` elapses)
        #: and only then answers with the status tree — one interaction
        #: replaces a poll train.  Servers without subscription support
        #: simply answer immediately (the poll semantics), so the field
        #: degrades cleanly.
        self.subscribe = bool(subscribe)
        self.hold_s = float(hold_s)

    def to_payload(self) -> dict[str, typing.Any]:
        payload = super().to_payload()
        payload["target_job_id"] = self.target_job_id
        payload["detail"] = self.detail
        if self.subscribe:
            payload["subscribe"] = True
            payload["hold_s"] = self.hold_s
        return payload
