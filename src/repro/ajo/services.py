"""Abstract services: job monitoring and control requests.

Figure 3's right branch: ControlService, ListService, QueryService — "the
abstract service for job monitoring" (section 5.3).  Services are
non-recursive actions the JMC sends to an NJS about previously consigned
jobs.
"""

from __future__ import annotations

import typing

from repro.ajo.actions import AbstractAction
from repro.ajo.errors import ValidationError

__all__ = ["AbstractService", "ControlService", "ControlVerb", "ListService", "QueryService"]


class AbstractService(AbstractAction):
    """Base class for monitoring/control services."""

    type_tag = "service"


class ControlVerb:
    """What a ControlService asks the NJS to do to a job."""

    CANCEL = "cancel"
    HOLD = "hold"
    RESUME = "resume"

    ALL = (CANCEL, HOLD, RESUME)


class ControlService(AbstractService):
    """Control a consigned job (cancel / hold / resume)."""

    type_tag = "control"

    def __init__(
        self,
        name: str,
        target_job_id: str,
        verb: str = ControlVerb.CANCEL,
        action_id: str | None = None,
    ) -> None:
        super().__init__(name, action_id=action_id)
        if not target_job_id:
            raise ValidationError("ControlService requires a target job id")
        if verb not in ControlVerb.ALL:
            raise ValidationError(f"unknown control verb {verb!r}")
        self.target_job_id = target_job_id
        self.verb = verb

    def to_payload(self) -> dict[str, typing.Any]:
        payload = super().to_payload()
        payload["target_job_id"] = self.target_job_id
        payload["verb"] = self.verb
        return payload


class ListService(AbstractService):
    """List the requesting user's UNICORE jobs known to this NJS."""

    type_tag = "list"


class QueryService(AbstractService):
    """Query status and outcomes of one consigned job.

    ``detail`` selects the JMC's "chosen level of detail" (section 5.7):
    job groups only, or down to individual tasks.
    """

    type_tag = "query"

    DETAIL_JOB = "job"
    DETAIL_GROUPS = "groups"
    DETAIL_TASKS = "tasks"
    _DETAILS = (DETAIL_JOB, DETAIL_GROUPS, DETAIL_TASKS)

    def __init__(
        self,
        name: str,
        target_job_id: str,
        detail: str = DETAIL_TASKS,
        action_id: str | None = None,
    ) -> None:
        super().__init__(name, action_id=action_id)
        if not target_job_id:
            raise ValidationError("QueryService requires a target job id")
        if detail not in self._DETAILS:
            raise ValidationError(f"unknown detail level {detail!r}")
        self.target_job_id = target_job_id
        self.detail = detail

    def to_payload(self) -> dict[str, typing.Any]:
        payload = super().to_payload()
        payload["target_job_id"] = self.target_job_id
        payload["detail"] = self.detail
        return payload
