"""The AJO wire codec.

The paper serializes AJOs with Java object serialization; here the
"transferable unit between the UNICORE components" (section 4.1) is a
versioned, type-tagged JSON tree.  The codec is total over the Figure 3
hierarchy: every action class registers its type tag, and decoding
reconstructs the exact object graph (children, dependencies, resources).

Encoded form::

    {"unicore_ajo": 1,              # envelope version
     "type": "ajo",                 # registry tag
     "data": {...payload...,
              "children": [<encoded child>...],
              "dependencies": [{"pred": ..., "succ": ..., "files": [...]}]}}
"""

from __future__ import annotations

import json
import typing

from repro.ajo.actions import AbstractAction
from repro.ajo.errors import SerializationError
from repro.ajo.job import AbstractJobObject
from repro.ajo.outcome import Outcome, _OUTCOME_KINDS
from repro.ajo.services import ControlService, ListService, QueryService
from repro.ajo.tasks import (
    CompileTask,
    ExecuteScriptTask,
    ExportTask,
    ImportTask,
    LinkTask,
    TransferTask,
    UserTask,
)
from repro.resources.model import ResourceRequest

__all__ = [
    "encode_ajo",
    "decode_ajo",
    "encode_outcome",
    "decode_outcome",
    "encode_service",
    "decode_service",
    "ENVELOPE_VERSION",
]

ENVELOPE_VERSION = 1

# ------------------------------------------------------------------ registry
_REGISTRY: dict[str, type[AbstractAction]] = {
    cls.type_tag: cls
    for cls in (
        AbstractJobObject,
        UserTask,
        ExecuteScriptTask,
        CompileTask,
        LinkTask,
        ImportTask,
        ExportTask,
        TransferTask,
        ControlService,
        ListService,
        QueryService,
    )
}


def _encode_action(action: AbstractAction) -> dict[str, typing.Any]:
    tag = action.type_tag
    if tag not in _REGISTRY or type(action) is not _REGISTRY[tag]:
        raise SerializationError(
            f"{type(action).__name__} is not a concrete wire type; only "
            f"{sorted(_REGISTRY)} cross the wire"
        )
    data = action.to_payload()
    if isinstance(action, AbstractJobObject):
        data["children"] = [_encode_action(c) for c in action.children]
        data["dependencies"] = [
            {"pred": d.predecessor_id, "succ": d.successor_id, "files": list(d.files)}
            for d in action.dependencies
        ]
    return {"type": tag, "data": data}


# Constructor adapters: payload dict -> instance.  Resources re-hydrate via
# ResourceRequest.from_dict; extra payload keys are the constructor kwargs.
def _decode_action(node: dict[str, typing.Any]) -> AbstractAction:
    try:
        tag = node["type"]
        data = dict(node["data"])
    except (TypeError, KeyError) as err:
        raise SerializationError(f"malformed action node: {err}") from err
    cls = _REGISTRY.get(tag)
    if cls is None:
        raise SerializationError(f"unknown action type tag {tag!r}")

    try:
        action_id = data.pop("id")
        name = data.pop("name")
    except KeyError as err:
        raise SerializationError(f"action node missing field {err}") from err
    children = data.pop("children", None)
    dependencies = data.pop("dependencies", None)
    resources = data.pop("resources", None)
    environment = data.pop("environment", None)

    kwargs: dict[str, typing.Any] = {"name": name, "action_id": action_id}
    if resources is not None:
        kwargs["resources"] = ResourceRequest.from_dict(resources)
    if environment is not None:
        kwargs["environment"] = environment
    kwargs.update(data)

    try:
        action = cls(**kwargs)
    except TypeError as err:
        raise SerializationError(f"cannot reconstruct {tag}: {err}") from err

    if isinstance(action, AbstractJobObject):
        for child_node in children or []:
            action.add(_decode_action(child_node))
        for dep in dependencies or []:
            action.add_dependency(dep["pred"], dep["succ"], files=dep["files"])
    return action


# ------------------------------------------------------------------- public
def encode_ajo(job: AbstractJobObject) -> bytes:
    """Serialize a full AJO tree to wire bytes."""
    if not isinstance(job, AbstractJobObject):
        raise SerializationError(
            f"top-level wire unit must be an AbstractJobObject, got "
            f"{type(job).__name__}"
        )
    envelope = {"unicore_ajo": ENVELOPE_VERSION, **_encode_action(job)}
    return json.dumps(envelope, sort_keys=True, separators=(",", ":")).encode()


def decode_ajo(data: bytes) -> AbstractJobObject:
    """Reconstruct the AJO tree encoded by :func:`encode_ajo`."""
    try:
        envelope = json.loads(data)
    except (ValueError, UnicodeDecodeError) as err:
        raise SerializationError(f"not a valid AJO encoding: {err}") from err
    if not isinstance(envelope, dict) or envelope.get("unicore_ajo") != ENVELOPE_VERSION:
        raise SerializationError(
            f"unsupported AJO envelope (need version {ENVELOPE_VERSION})"
        )
    action = _decode_action(envelope)
    if not isinstance(action, AbstractJobObject):
        raise SerializationError("decoded wire unit is not a job object")
    return action


def encode_service(service: AbstractAction) -> bytes:
    """Serialize a standalone service request (Control/List/Query)."""
    envelope = {"unicore_service": ENVELOPE_VERSION, **_encode_action(service)}
    return json.dumps(envelope, sort_keys=True, separators=(",", ":")).encode()


def decode_service(data: bytes) -> AbstractAction:
    """Reconstruct a service encoded by :func:`encode_service`."""
    try:
        envelope = json.loads(data)
    except (ValueError, UnicodeDecodeError) as err:
        raise SerializationError(f"not a valid service encoding: {err}") from err
    if (
        not isinstance(envelope, dict)
        or envelope.get("unicore_service") != ENVELOPE_VERSION
    ):
        raise SerializationError(
            f"unsupported service envelope (need version {ENVELOPE_VERSION})"
        )
    return _decode_action(envelope)


def encode_outcome(outcome: Outcome) -> bytes:
    """Serialize an outcome (tree) to wire bytes."""
    envelope = {
        "unicore_outcome": ENVELOPE_VERSION,
        "kind": outcome.kind,
        "data": outcome.to_payload(),
    }
    return json.dumps(envelope, sort_keys=True, separators=(",", ":")).encode()


def decode_outcome(data: bytes) -> Outcome:
    """Reconstruct an outcome encoded by :func:`encode_outcome`."""
    try:
        envelope = json.loads(data)
    except (ValueError, UnicodeDecodeError) as err:
        raise SerializationError(f"not a valid outcome encoding: {err}") from err
    if (
        not isinstance(envelope, dict)
        or envelope.get("unicore_outcome") != ENVELOPE_VERSION
    ):
        raise SerializationError(
            f"unsupported outcome envelope (need version {ENVELOPE_VERSION})"
        )
    cls = _OUTCOME_KINDS.get(envelope.get("kind"))
    if cls is None:
        raise SerializationError(f"unknown outcome kind {envelope.get('kind')!r}")
    try:
        return cls.from_payload(envelope["data"])
    except (KeyError, TypeError, ValueError) as err:
        raise SerializationError(f"cannot reconstruct outcome: {err}") from err
