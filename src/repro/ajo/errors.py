"""Exceptions for the AJO layer."""

__all__ = [
    "AJOError",
    "ValidationError",
    "DependencyCycleError",
    "SerializationError",
]


class AJOError(Exception):
    """Base class for AJO-layer errors."""


class ValidationError(AJOError):
    """The AJO is structurally invalid (ids, destinations, references)."""


class DependencyCycleError(ValidationError):
    """The job graph is not acyclic."""


class SerializationError(AJOError):
    """The AJO/Outcome wire encoding is malformed or unsupported."""
