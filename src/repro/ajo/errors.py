"""Exceptions for the AJO layer."""

from repro.errors import ReproError

__all__ = [
    "AJOError",
    "ValidationError",
    "DependencyCycleError",
    "SerializationError",
    "UnsafePathError",
]


class AJOError(ReproError):
    """Base class for AJO-layer errors."""

    code = "ajo.error"


class ValidationError(AJOError):
    """The AJO is structurally invalid (ids, destinations, references)."""

    code = "ajo.validation"


class DependencyCycleError(ValidationError):
    """The job graph is not acyclic."""

    code = "ajo.dependency_cycle"


class SerializationError(AJOError):
    """The AJO/Outcome wire encoding is malformed or unsupported."""

    code = "ajo.serialization"


class UnsafePathError(SerializationError):
    """A file manifest names a path no Uspace may be asked to write:
    traversal segments, duplicates, control characters, or (for
    Uspace-destined entries) absolute paths."""

    code = "ajo.unsafe_path"
