"""The Abstract Job Object (AJO) — the paper's central contribution.

Paper section 5.3: "The UNICORE protocol is implemented as a Java object
called the abstract job object (AJO).  It specifies all actions to be
performed by the NJS which are grouped together in the Java class
AbstractAction."  Figure 3 gives the class hierarchy, reproduced here
one-for-one:

.. code-block:: text

    AbstractAction
    ├── AbstractJobObject            (recursive job graph + destination)
    ├── AbstractTaskObject
    │   ├── ExecuteTask
    │   │   ├── CompileTask
    │   │   ├── LinkTask
    │   │   ├── UserTask
    │   │   └── ExecuteScriptTask
    │   └── FileTask
    │       ├── ImportTask
    │       ├── ExportTask
    │       └── TransferTask
    └── AbstractService
        ├── ControlService
        ├── ListService
        └── QueryService

"A Java class Outcome is defined to contain the status of an abstract
action and the results of its execution.  Outcome contains a subclass for
each subclass of AbstractAction" — mirrored in :mod:`repro.ajo.outcome`.

The AJO is *recursive*: an AbstractJobObject contains a directed acyclic
graph of tasks and sub-AJOs destined for other execution systems, plus
the destination Vsite, the user, site-specific security information, and
the user account group.
"""

from repro.ajo.errors import (
    AJOError,
    DependencyCycleError,
    SerializationError,
    UnsafePathError,
    ValidationError,
)
from repro.ajo.status import ActionStatus
from repro.ajo.actions import AbstractAction
from repro.ajo.tasks import (
    AbstractTaskObject,
    CompileTask,
    ExecuteScriptTask,
    ExecuteTask,
    ExportTask,
    FileTask,
    ImportTask,
    LinkTask,
    TransferTask,
    UserTask,
)
from repro.ajo.services import (
    AbstractService,
    ControlService,
    ControlVerb,
    ListService,
    QueryService,
)
from repro.ajo.job import AbstractJobObject, Dependency
from repro.ajo.outcome import (
    AJOOutcome,
    FileOutcome,
    Outcome,
    ServiceOutcome,
    TaskOutcome,
    outcome_class_for,
)
from repro.ajo.dag import critical_path_length, ready_actions, topological_order
from repro.ajo.serialize import (
    decode_ajo,
    decode_outcome,
    decode_service,
    encode_ajo,
    encode_outcome,
    encode_service,
)
from repro.ajo.validate import validate_ajo

__all__ = [
    "AJOError",
    "AJOOutcome",
    "AbstractAction",
    "AbstractJobObject",
    "AbstractService",
    "AbstractTaskObject",
    "ActionStatus",
    "CompileTask",
    "ControlService",
    "ControlVerb",
    "Dependency",
    "DependencyCycleError",
    "ExecuteScriptTask",
    "ExecuteTask",
    "ExportTask",
    "FileOutcome",
    "FileTask",
    "ImportTask",
    "LinkTask",
    "ListService",
    "Outcome",
    "QueryService",
    "SerializationError",
    "UnsafePathError",
    "ServiceOutcome",
    "TaskOutcome",
    "TransferTask",
    "UserTask",
    "ValidationError",
    "critical_path_length",
    "decode_ajo",
    "decode_outcome",
    "decode_service",
    "encode_ajo",
    "encode_outcome",
    "encode_service",
    "outcome_class_for",
    "ready_actions",
    "topological_order",
    "validate_ajo",
]
