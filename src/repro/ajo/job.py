"""The AbstractJobObject: the recursive job graph.

Paper section 5.3: "The class AbstractJobObject contains the directed
acyclic job graph representing the job components (AbstractTaskObject and
AbstractJobObjects) together with their dependencies and information
about the destination site (Vsite), the user, site specific security, and
the user account group.  The recursive structure of the AJO allows for
the AJO to contain sub-AJOs (corresponding to job groups in a UNICORE
job) which are intended for other execution systems."

Dependencies connect children *at the same level of the job tree* and may
be "augmented by the names of the files to be transferred from one to the
other" (section 5.7); the NJS then "guarantees that the specified data
sets created by the predecessor are available to the successor".
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.ajo.actions import AbstractAction
from repro.ajo.errors import ValidationError
from repro.ajo.tasks import AbstractTaskObject

__all__ = ["AbstractJobObject", "Dependency"]


@dataclass(frozen=True, slots=True)
class Dependency:
    """A sequencing edge between two sibling actions, with optional files.

    ``files`` names the datasets the predecessor produces that must be
    made available to the successor before it may start.
    """

    predecessor_id: str
    successor_id: str
    files: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        if self.predecessor_id == self.successor_id:
            raise ValidationError(
                f"action {self.predecessor_id} cannot depend on itself"
            )


class AbstractJobObject(AbstractAction):
    """A job group: DAG of tasks and sub-AJOs bound for one Vsite.

    Parameters
    ----------
    name:
        Job (group) name shown in the JMC.
    vsite:
        Destination virtual site for the directly contained tasks.
    usite:
        Destination UNICORE site; sub-AJOs with a different ``usite`` are
        forwarded NJS-to-NJS.
    user_dn:
        The user's certificate DN (the unique UNICORE identification).
    account_group:
        The user account group to charge.
    site_security:
        Opaque site-specific security token (smart card / DCE, section 4.2).
    """

    type_tag = "ajo"

    def __init__(
        self,
        name: str,
        vsite: str = "",
        usite: str = "",
        user_dn: str = "",
        account_group: str = "",
        site_security: str = "",
        action_id: str | None = None,
    ) -> None:
        super().__init__(name, action_id=action_id)
        self.vsite = vsite
        self.usite = usite
        self.user_dn = user_dn
        self.account_group = account_group
        self.site_security = site_security
        self._children: dict[str, AbstractAction] = {}
        self._dependencies: list[Dependency] = []

    # -- construction ---------------------------------------------------------
    def add(self, action: AbstractAction) -> AbstractAction:
        """Add a child task or sub-AJO; returns it for chaining."""
        if not isinstance(action, (AbstractTaskObject, AbstractJobObject)):
            raise ValidationError(
                f"job graph children must be tasks or job groups, got "
                f"{type(action).__name__}"
            )
        if action.id in self._children:
            raise ValidationError(f"duplicate child id {action.id}")
        if action is self:
            raise ValidationError("a job group cannot contain itself")
        self._children[action.id] = action
        return action

    def add_dependency(
        self,
        predecessor: AbstractAction | str,
        successor: AbstractAction | str,
        files: typing.Iterable[str] = (),
    ) -> Dependency:
        """Sequence ``successor`` after ``predecessor`` (both children).

        ``files`` are the predecessor's output datasets the NJS must make
        available to the successor (section 5.7).
        """
        pred_id = predecessor.id if isinstance(predecessor, AbstractAction) else predecessor
        succ_id = successor.id if isinstance(successor, AbstractAction) else successor
        for ref, role in ((pred_id, "predecessor"), (succ_id, "successor")):
            if ref not in self._children:
                raise ValidationError(
                    f"dependency {role} {ref!r} is not a child of {self.id}"
                )
        dep = Dependency(pred_id, succ_id, tuple(files))
        self._dependencies.append(dep)
        return dep

    # -- structure access -------------------------------------------------------
    @property
    def children(self) -> list[AbstractAction]:
        """Direct children in insertion order."""
        return list(self._children.values())

    @property
    def dependencies(self) -> list[Dependency]:
        return list(self._dependencies)

    def child(self, action_id: str) -> AbstractAction:
        try:
            return self._children[action_id]
        except KeyError:
            raise ValidationError(f"{self.id} has no child {action_id!r}") from None

    def sub_jobs(self) -> "list[AbstractJobObject]":
        """Direct sub-AJOs (job groups)."""
        return [c for c in self.children if isinstance(c, AbstractJobObject)]

    def tasks(self) -> list[AbstractTaskObject]:
        """Direct tasks (not descending into sub-AJOs)."""
        return [c for c in self.children if isinstance(c, AbstractTaskObject)]

    def walk(self) -> typing.Iterator[AbstractAction]:
        """Depth-first traversal of the whole tree, self included."""
        yield self
        for child in self.children:
            if isinstance(child, AbstractJobObject):
                yield from child.walk()
            else:
                yield child

    def total_actions(self) -> int:
        """Number of actions in the whole tree (job groups included)."""
        return sum(1 for _ in self.walk())

    def depth(self) -> int:
        """Nesting depth: 1 for a flat job, +1 per level of sub-AJOs."""
        subs = self.sub_jobs()
        return 1 + (max((s.depth() for s in subs), default=0))

    # -- serialization -----------------------------------------------------------
    def to_payload(self) -> dict[str, typing.Any]:
        payload = super().to_payload()
        payload.update(
            vsite=self.vsite,
            usite=self.usite,
            user_dn=self.user_dn,
            account_group=self.account_group,
            site_security=self.site_security,
            # children/dependencies are appended by the codec (recursion).
        )
        return payload

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbstractJobObject):
            return NotImplemented
        return (
            self.to_payload() == other.to_payload()
            and self.children == other.children
            and self._dependencies == other._dependencies
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.id))
