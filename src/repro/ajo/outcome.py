"""Outcomes: status plus results of executed abstract actions.

Paper section 5.3: "A Java class Outcome is defined to contain the status
of an abstract action and the results of its execution.  Outcome contains
a subclass for each subclass of AbstractAction which are associated to
give the results of an abstract action."

:func:`outcome_class_for` implements that association: it maps an action
type to its outcome type.  :class:`AJOOutcome` aggregates the outcomes of
a whole job group and rolls up a combined status for the JMC display.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.ajo.actions import AbstractAction
from repro.ajo.job import AbstractJobObject
from repro.ajo.services import AbstractService
from repro.ajo.status import ActionStatus
from repro.ajo.tasks import AbstractTaskObject, FileTask

__all__ = [
    "Outcome",
    "TaskOutcome",
    "FileOutcome",
    "ServiceOutcome",
    "AJOOutcome",
    "outcome_class_for",
]


@dataclass(slots=True)
class Outcome:
    """Status and results of one abstract action."""

    action_id: str
    status: ActionStatus = ActionStatus.PENDING
    #: Human-readable explanation, mostly for failures.
    reason: str = ""
    #: Simulated timestamps (NaN until set).
    submitted_at: float = float("nan")
    completed_at: float = float("nan")

    kind: typing.ClassVar[str] = "outcome"

    def mark(self, status: ActionStatus, reason: str = "") -> None:
        """Transition to ``status``; terminal states are sticky."""
        if self.status.is_terminal:
            raise ValueError(
                f"outcome of {self.action_id} already terminal "
                f"({self.status.value}); cannot become {status.value}"
            )
        self.status = status
        if reason:
            self.reason = reason

    def to_payload(self) -> dict[str, typing.Any]:
        return {
            "action_id": self.action_id,
            "status": self.status.value,
            "reason": self.reason,
            "submitted_at": self.submitted_at,
            "completed_at": self.completed_at,
        }

    @classmethod
    def _apply_payload(cls, out: "Outcome", payload: dict[str, typing.Any]) -> None:
        out.status = ActionStatus(payload["status"])
        out.reason = payload["reason"]
        out.submitted_at = payload["submitted_at"]
        out.completed_at = payload["completed_at"]

    @classmethod
    def from_payload(cls, payload: dict[str, typing.Any]) -> "Outcome":
        out = cls(action_id=payload["action_id"])
        cls._apply_payload(out, payload)
        return out


@dataclass(slots=True)
class TaskOutcome(Outcome):
    """Outcome of an execute task: exit code plus collected output.

    The NJS "collects the standard output and error files from the batch
    jobs" (section 5.5); they are carried here for the JMC to list/save.
    """

    exit_code: int | None = None
    stdout: str = ""
    stderr: str = ""

    kind: typing.ClassVar[str] = "task"

    def to_payload(self) -> dict[str, typing.Any]:
        payload = Outcome.to_payload(self)
        payload.update(exit_code=self.exit_code, stdout=self.stdout, stderr=self.stderr)
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, typing.Any]) -> "TaskOutcome":
        out = cls(action_id=payload["action_id"])
        cls._apply_payload(out, payload)
        out.exit_code = payload["exit_code"]
        out.stdout = payload["stdout"]
        out.stderr = payload["stderr"]
        return out


@dataclass(slots=True)
class FileOutcome(Outcome):
    """Outcome of a file task: how many bytes moved, where."""

    bytes_moved: int = 0
    effective_bandwidth: float = 0.0

    kind: typing.ClassVar[str] = "file"

    def to_payload(self) -> dict[str, typing.Any]:
        payload = Outcome.to_payload(self)
        payload.update(
            bytes_moved=self.bytes_moved,
            effective_bandwidth=self.effective_bandwidth,
        )
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, typing.Any]) -> "FileOutcome":
        out = cls(action_id=payload["action_id"])
        cls._apply_payload(out, payload)
        out.bytes_moved = payload["bytes_moved"]
        out.effective_bandwidth = payload["effective_bandwidth"]
        return out


@dataclass(slots=True)
class ServiceOutcome(Outcome):
    """Outcome of a monitoring/control service: the answer payload."""

    #: JSON-able answer (job listing, status tree, acknowledgement...).
    answer: object = None

    kind: typing.ClassVar[str] = "service"

    def to_payload(self) -> dict[str, typing.Any]:
        payload = Outcome.to_payload(self)
        payload["answer"] = self.answer
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, typing.Any]) -> "ServiceOutcome":
        out = cls(action_id=payload["action_id"])
        cls._apply_payload(out, payload)
        out.answer = payload["answer"]
        return out


@dataclass(slots=True)
class AJOOutcome(Outcome):
    """Aggregated outcome of a job group: children keyed by action id."""

    children: dict[str, Outcome] = field(default_factory=dict)

    kind: typing.ClassVar[str] = "ajo"

    def add_child(self, outcome: Outcome) -> None:
        self.children[outcome.action_id] = outcome

    def child(self, action_id: str) -> Outcome:
        return self.children[action_id]

    def find(self, action_id: str) -> Outcome:
        """Locate an outcome anywhere in the tree (self included).

        Raises ``KeyError`` with the searched id if absent.
        """
        if self.action_id == action_id:
            return self
        for child in self.children.values():
            if child.action_id == action_id:
                return child
            if isinstance(child, AJOOutcome):
                try:
                    return child.find(action_id)
                except KeyError:
                    continue
        raise KeyError(action_id)

    def rollup_status(self) -> ActionStatus:
        """Combined status for the JMC's job-group icon.

        A group reports a *terminal* verdict only once every child is
        terminal — a failure in one branch does not end a job whose other
        branches are still running (their results are still coming).
        While in flight: RUNNING if anything runs, else QUEUED if
        anything is queued, else PENDING.  Once all children are
        terminal: FAILED beats KILLED beats all-NOT_ATTEMPTED beats
        SUCCESSFUL.  A group whose own status is already FAILED/KILLED
        (e.g. rejected wholesale by a remote NJS) reports that regardless
        of its never-started children.
        """
        if self.status in (ActionStatus.FAILED, ActionStatus.KILLED):
            return self.status
        statuses = {c.status for c in self.children.values()}
        if not statuses:
            return self.status
        if any(not s.is_terminal for s in statuses):
            if ActionStatus.RUNNING in statuses:
                return ActionStatus.RUNNING
            if ActionStatus.QUEUED in statuses:
                return ActionStatus.QUEUED
            return ActionStatus.PENDING
        if ActionStatus.FAILED in statuses:
            return ActionStatus.FAILED
        if ActionStatus.KILLED in statuses:
            return ActionStatus.KILLED
        if statuses == {ActionStatus.NOT_ATTEMPTED}:
            return ActionStatus.NOT_ATTEMPTED
        return ActionStatus.SUCCESSFUL

    def to_payload(self) -> dict[str, typing.Any]:
        payload = Outcome.to_payload(self)
        payload["children"] = {
            cid: {"kind": child.kind, "data": child.to_payload()}
            for cid, child in sorted(self.children.items())
        }
        return payload

    @classmethod
    def from_payload(cls, payload: dict[str, typing.Any]) -> "AJOOutcome":
        out = cls(action_id=payload["action_id"])
        cls._apply_payload(out, payload)
        for cid, wrapped in payload["children"].items():
            child_cls = _OUTCOME_KINDS[wrapped["kind"]]
            out.children[cid] = child_cls.from_payload(wrapped["data"])
        return out


_OUTCOME_KINDS: dict[str, type[Outcome]] = {
    cls.kind: cls
    for cls in (Outcome, TaskOutcome, FileOutcome, ServiceOutcome, AJOOutcome)
}


def outcome_class_for(action: AbstractAction) -> type[Outcome]:
    """The Outcome subclass associated with ``action``'s type (section 5.3)."""
    if isinstance(action, AbstractJobObject):
        return AJOOutcome
    if isinstance(action, FileTask):
        return FileOutcome
    if isinstance(action, AbstractTaskObject):
        return TaskOutcome
    if isinstance(action, AbstractService):
        return ServiceOutcome
    return Outcome


def new_outcome(action: AbstractAction) -> Outcome:
    """A fresh PENDING outcome of the right subclass for ``action``."""
    return outcome_class_for(action)(action_id=action.id)
