"""DAG utilities over a job group's dependency edges.

The NJS "makes sure that the dependent parts of the UNICORE job are
scheduled in the predefined sequence" (section 4.2).  These helpers give
it (and the JPA's validation) the standard DAG operations: cycle-checked
topological order, the ready set given completed predecessors, and the
critical-path length used by experiment E7.
"""

from __future__ import annotations

import typing
from collections import deque

from repro.ajo.errors import DependencyCycleError
from repro.ajo.job import AbstractJobObject

__all__ = [
    "topological_order",
    "ready_actions",
    "critical_path_length",
    "predecessors_map",
    "to_networkx",
]


def _edges(job: AbstractJobObject) -> list[tuple[str, str]]:
    return [(d.predecessor_id, d.successor_id) for d in job.dependencies]


def predecessors_map(job: AbstractJobObject) -> dict[str, set[str]]:
    """child id → set of predecessor ids (direct children only)."""
    preds: dict[str, set[str]] = {c.id: set() for c in job.children}
    for pred, succ in _edges(job):
        preds[succ].add(pred)
    return preds


def topological_order(job: AbstractJobObject) -> list[str]:
    """Kahn's algorithm over the direct children; raises on cycles.

    Ties (multiple ready actions) resolve in insertion order, so the
    result is deterministic and matches the user's authoring order where
    the dependencies permit.
    """
    preds = predecessors_map(job)
    indegree = {cid: len(p) for cid, p in preds.items()}
    successors: dict[str, list[str]] = {cid: [] for cid in indegree}
    seen: set[tuple[str, str]] = set()
    for pred, succ in _edges(job):
        # A user may declare the same edge twice (e.g. once per transferred
        # file set).  Indegrees come from the deduplicated predecessor sets,
        # so the successor lists must be deduplicated to match — otherwise a
        # repeated edge decrements its successor more than once and releases
        # it before its *other* predecessors have run.
        if (pred, succ) in seen:
            continue
        seen.add((pred, succ))
        successors[pred].append(succ)

    order: list[str] = []
    queue = deque(cid for cid in indegree if indegree[cid] == 0)
    while queue:
        cid = queue.popleft()
        order.append(cid)
        for succ in successors[cid]:
            indegree[succ] -= 1
            if indegree[succ] == 0:
                queue.append(succ)
    if len(order) != len(indegree):
        stuck = sorted(cid for cid, d in indegree.items() if d > 0)
        raise DependencyCycleError(
            f"job {job.id}: dependency cycle among {stuck}"
        )
    return order


def ready_actions(
    job: AbstractJobObject, completed: typing.Collection[str]
) -> list[str]:
    """Children whose predecessors are all in ``completed`` and which are
    not themselves completed — what the NJS may deliver next."""
    done = set(completed)
    return [
        cid
        for cid, preds in predecessors_map(job).items()
        if cid not in done and preds <= done
    ]


def critical_path_length(
    job: AbstractJobObject,
    weight: typing.Callable[[str], float] | None = None,
) -> float:
    """Length of the longest weighted path through the job graph.

    ``weight`` maps a child id to its cost (default 1.0 per action).
    """
    w = weight or (lambda _cid: 1.0)
    order = topological_order(job)
    preds = predecessors_map(job)
    finish: dict[str, float] = {}
    for cid in order:
        start = max((finish[p] for p in preds[cid]), default=0.0)
        finish[cid] = start + w(cid)
    return max(finish.values(), default=0.0)


def to_networkx(job: AbstractJobObject) -> typing.Any:
    """The direct-children dependency graph as a ``networkx.DiGraph``.

    Node attributes carry the action objects; edge attributes the files.
    Provided for analysis/visualization — core scheduling does not depend
    on networkx.
    """
    import networkx as nx

    g = nx.DiGraph(job_id=job.id, name=job.name)
    for child in job.children:
        g.add_node(child.id, action=child)
    for dep in job.dependencies:
        g.add_edge(dep.predecessor_id, dep.successor_id, files=list(dep.files))
    return g
