"""Action status values.

The JMC displays job status "in a seamless way" with colored icons (paper
section 5.7) — the same status vocabulary regardless of destination
system.  These are those uniform states; each vendor batch dialect maps
its local states onto them (the reverse of incarnation).
"""

from __future__ import annotations

import enum

__all__ = ["ActionStatus"]


class ActionStatus(enum.Enum):
    """Uniform lifecycle states of an abstract action."""

    #: Consigned but predecessors not yet complete.
    PENDING = "pending"
    #: Delivered to the destination batch system, waiting in its queue.
    QUEUED = "queued"
    #: Executing on the destination system.
    RUNNING = "running"
    #: Completed with exit status zero.
    SUCCESSFUL = "successful"
    #: Completed with a failure (non-zero exit, resource rejection, ...).
    FAILED = "failed"
    #: Terminated on user request via a ControlService.
    KILLED = "killed"
    #: Never ran because a predecessor failed or was killed.
    NOT_ATTEMPTED = "not_attempted"

    @property
    def is_terminal(self) -> bool:
        """True once the action can no longer change state."""
        return self in _TERMINAL

    @property
    def is_success(self) -> bool:
        return self is ActionStatus.SUCCESSFUL

    @property
    def display_color(self) -> str:
        """The JMC icon color for this state (section 5.7)."""
        return _COLORS[self]


_TERMINAL = frozenset(
    {
        ActionStatus.SUCCESSFUL,
        ActionStatus.FAILED,
        ActionStatus.KILLED,
        ActionStatus.NOT_ATTEMPTED,
    }
)

_COLORS = {
    ActionStatus.PENDING: "grey",
    ActionStatus.QUEUED: "yellow",
    ActionStatus.RUNNING: "blue",
    ActionStatus.SUCCESSFUL: "green",
    ActionStatus.FAILED: "red",
    ActionStatus.KILLED: "black",
    ActionStatus.NOT_ATTEMPTED: "white",
}
