"""The AbstractAction base class and action identity.

Every node of an AJO — job groups, tasks, services — is an
:class:`AbstractAction` with a unique identifier and a human-readable
name.  Identifiers are generated from a process-local counter; they only
need to be unique within one client's AJO stream, and tests can reset the
counter for full determinism.
"""

from __future__ import annotations

import itertools
import typing

__all__ = ["AbstractAction", "reset_action_ids"]

_counter = itertools.count(1)


def _next_id(prefix: str) -> str:
    return f"{prefix}{next(_counter):06d}"


def reset_action_ids() -> None:
    """Reset the id counter (tests and deterministic benchmarks only)."""
    global _counter
    _counter = itertools.count(1)


class AbstractAction:
    """Base of the Figure 3 hierarchy: something the NJS must perform.

    Parameters
    ----------
    name:
        Human-readable label shown in the JMC job tree.
    action_id:
        Normally auto-assigned; deserialization passes the original.
    """

    #: Short type tag used in serialization and id prefixes; subclasses set it.
    type_tag = "action"

    def __init__(self, name: str, action_id: str | None = None) -> None:
        if not name:
            raise ValueError(f"{type(self).__name__} requires a non-empty name")
        self.name = name
        self.id = action_id if action_id is not None else _next_id(self.type_tag[:3])

    # -- serialization hooks (extended by subclasses) -------------------------
    def to_payload(self) -> dict[str, typing.Any]:
        """Subclass fields as a JSON-able dict (without type/envelope)."""
        return {"id": self.id, "name": self.name}

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.id} {self.name!r}>"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, AbstractAction):
            return NotImplemented
        return type(self) is type(other) and self.to_payload() == other.to_payload()

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.id))
