"""Local copy primitives with byte accounting.

Imports from Xspace to Uspace and exports back "are implemented as a copy
process available at the Vsite" (section 5.6) — i.e. they do not cross
the network.  These helpers perform such copies between any two
filesystem-like objects and report the bytes moved so outcomes and
benchmarks can account for them.
"""

from __future__ import annotations

import typing

__all__ = ["copy_file", "copy_tree"]


class _Readable(typing.Protocol):  # pragma: no cover - structural typing only
    def read(self, path: str) -> bytes: ...


class _Writable(typing.Protocol):  # pragma: no cover
    def write(self, path: str, content: bytes) -> None: ...


def copy_file(
    source: _Readable,
    source_path: str,
    destination: _Writable,
    destination_path: str,
    metrics=None,
) -> int:
    """Copy one file; returns the number of bytes moved.

    With a :class:`~repro.observability.MetricsRegistry` as ``metrics``,
    counts the copy under ``vfs.files_copied`` / ``vfs.bytes_copied``.
    """
    content = source.read(source_path)
    destination.write(destination_path, content)
    if metrics is not None:
        metrics.counter("vfs.files_copied").inc()
        metrics.counter("vfs.bytes_copied").inc(len(content))
    return len(content)


def copy_tree(
    source,
    source_root: str,
    destination: _Writable,
    destination_root: str,
    metrics=None,
) -> int:
    """Copy every file under ``source_root``; returns total bytes moved.

    ``source`` must offer ``walk_files``/``read`` (an
    :class:`~repro.vfs.filesystem.InMemoryFileSystem`).
    """
    total = 0
    prefix = source_root.rstrip("/") + "/"
    for path in source.walk_files(source_root):
        rel = path[len(prefix):] if path.startswith(prefix) else path.lstrip("/")
        dest = destination_root.rstrip("/") + "/" + rel
        total += copy_file(source, path, destination, dest, metrics=metrics)
    return total
