"""Exceptions for the virtual filesystem."""

__all__ = [
    "VFSError",
    "FileNotFoundVFSError",
    "FileExistsVFSError",
    "QuotaExceededError",
]


class VFSError(Exception):
    """Base class for virtual-filesystem errors."""


class FileNotFoundVFSError(VFSError):
    """The path does not exist."""


class FileExistsVFSError(VFSError):
    """The path already exists and overwrite was not requested."""


class QuotaExceededError(VFSError):
    """Writing would exceed the filesystem quota."""
