"""Exceptions for the virtual filesystem."""

from repro.errors import ReproError

__all__ = [
    "VFSError",
    "FileNotFoundVFSError",
    "FileExistsVFSError",
    "QuotaExceededError",
]


class VFSError(ReproError):
    """Base class for virtual-filesystem errors."""

    code = "vfs.error"


class FileNotFoundVFSError(VFSError):
    """The path does not exist."""

    code = "vfs.not_found"


class FileExistsVFSError(VFSError):
    """The path already exists and overwrite was not requested."""

    code = "vfs.exists"


class QuotaExceededError(VFSError):
    """Writing would exceed the filesystem quota."""

    code = "vfs.quota"
