"""The three UNICORE data spaces: Workstation, Xspace, Uspace.

Section 4 of the paper defines: Xspace = "the file systems available at
the Vsites of a Usite"; Uspace = "all data available to a UNICORE job";
plus the user's workstation as the third location.  Imports/exports
between Xspace and Uspace "are always local operations performed at a
Vsite ... implemented as a copy process" (section 5.6).
"""

from __future__ import annotations

import math
from repro.vfs.errors import VFSError
from repro.vfs.filesystem import InMemoryFileSystem

__all__ = ["Workstation", "Xspace", "Uspace", "UspaceManager"]


class Workstation:
    """The user's local machine: files that ride along inside the AJO."""

    def __init__(self, owner_dn: str, quota_bytes: float = math.inf) -> None:
        self.owner_dn = owner_dn
        self.fs = InMemoryFileSystem(name=f"workstation:{owner_dn}", quota_bytes=quota_bytes)

    def stage_for_ajo(self, paths: list[str]) -> dict[str, bytes]:
        """Collect the named local files for embedding into an AJO.

        Section 5.6: "Files from the user's workstation needed in a job
        are put into the AJO."
        """
        return {path: self.fs.read(path) for path in paths}


class Xspace:
    """The site file systems of one Usite (outside UNICORE control)."""

    def __init__(self, usite: str, quota_bytes: float = math.inf) -> None:
        self.usite = usite
        self.fs = InMemoryFileSystem(name=f"xspace:{usite}", quota_bytes=quota_bytes)


class Uspace:
    """The UNICORE job directory for one job at one Vsite.

    Section 5.5: the NJS must "create a UNICORE job directory to contain
    the data for and created during the job run".  Paths inside a Uspace
    are relative to the job directory.
    """

    def __init__(self, job_id: str, vsite: str, fs: InMemoryFileSystem, root: str) -> None:
        self.job_id = job_id
        self.vsite = vsite
        self._fs = fs
        self.root = root

    def _abs(self, path: str) -> str:
        if path.startswith("/"):
            path = path[1:]
        return f"{self.root}/{path}"

    def write(self, path: str, content: bytes) -> None:
        self._fs.write(self._abs(path), content)

    def read(self, path: str) -> bytes:
        return self._fs.read(self._abs(path))

    def exists(self, path: str) -> bool:
        return self._fs.is_file(self._abs(path))

    def size(self, path: str) -> int:
        return self._fs.size(self._abs(path))

    def listdir(self, path: str = "/") -> list[str]:
        return self._fs.listdir(self._abs(path) if path != "/" else self.root)

    def files(self) -> list[str]:
        """All file paths in this Uspace, relative to the job directory."""
        prefix = self.root + "/"
        return [p[len(prefix):] for p in self._fs.walk_files(self.root)]

    def used_bytes(self) -> int:
        return sum(self._fs.size(p) for p in self._fs.walk_files(self.root))


class UspaceManager:
    """Creates and destroys Uspaces on a Vsite's UNICORE spool filesystem."""

    def __init__(self, vsite: str, quota_bytes: float = math.inf) -> None:
        self.vsite = vsite
        self.fs = InMemoryFileSystem(name=f"uspace:{vsite}", quota_bytes=quota_bytes)
        self._active: dict[str, Uspace] = {}

    def create(self, job_id: str) -> Uspace:
        """Create the job directory for ``job_id``."""
        if job_id in self._active:
            raise VFSError(f"uspace for job {job_id} already exists on {self.vsite}")
        root = f"/jobs/{job_id}"
        self.fs.mkdir(root)
        uspace = Uspace(job_id=job_id, vsite=self.vsite, fs=self.fs, root=root)
        self._active[job_id] = uspace
        return uspace

    def get(self, job_id: str) -> Uspace:
        try:
            return self._active[job_id]
        except KeyError:
            raise VFSError(f"no uspace for job {job_id} on {self.vsite}") from None

    def destroy(self, job_id: str) -> None:
        """Remove the job directory and all its contents."""
        uspace = self.get(job_id)
        self.fs.delete(uspace.root)
        del self._active[job_id]

    @property
    def active_jobs(self) -> list[str]:
        return sorted(self._active)
