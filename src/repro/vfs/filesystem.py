"""An in-memory filesystem with quota accounting.

Paths are ``/``-separated, always normalized to an absolute form without
``.`` or ``..`` components.  Directories are implicit (created by writing
files under them) but can also be created empty.  The quota covers file
content bytes only.
"""

from __future__ import annotations

import math
import typing

from repro.vfs.errors import (
    FileExistsVFSError,
    FileNotFoundVFSError,
    QuotaExceededError,
    VFSError,
)

__all__ = ["InMemoryFileSystem", "normalize"]


def normalize(path: str) -> str:
    """Normalize to ``/a/b/c`` form; rejects escapes above the root."""
    if not path:
        raise VFSError("empty path")
    parts: list[str] = []
    for comp in path.split("/"):
        if comp in ("", "."):
            continue
        if comp == "..":
            if not parts:
                raise VFSError(f"path {path!r} escapes the filesystem root")
            parts.pop()
        else:
            parts.append(comp)
    return "/" + "/".join(parts)


class InMemoryFileSystem:
    """Files as ``path -> bytes`` with explicit empty directories.

    Parameters
    ----------
    name:
        Label used in error messages (e.g. ``"FZJ:/xspace"``).
    quota_bytes:
        Total content bytes allowed (``inf`` = unlimited).
    """

    def __init__(self, name: str = "fs", quota_bytes: float = math.inf) -> None:
        if quota_bytes <= 0:
            raise VFSError("quota must be positive")
        self.name = name
        self.quota_bytes = quota_bytes
        self._files: dict[str, bytes] = {}
        self._dirs: set[str] = {"/"}
        self._used = 0

    # -- introspection ------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def free_bytes(self) -> float:
        return self.quota_bytes - self._used

    def exists(self, path: str) -> bool:
        p = normalize(path)
        return p in self._files or p in self._dirs

    def is_file(self, path: str) -> bool:
        return normalize(path) in self._files

    def is_dir(self, path: str) -> bool:
        return normalize(path) in self._dirs

    def size(self, path: str) -> int:
        p = normalize(path)
        try:
            return len(self._files[p])
        except KeyError:
            raise FileNotFoundVFSError(f"{self.name}: no file {p}") from None

    def file_count(self) -> int:
        return len(self._files)

    # -- directory ops ----------------------------------------------------------
    def mkdir(self, path: str) -> None:
        """Create a directory (and ancestors); idempotent."""
        p = normalize(path)
        if p in self._files:
            raise FileExistsVFSError(f"{self.name}: {p} is a file")
        self._add_ancestors(p)
        self._dirs.add(p)

    def _add_ancestors(self, p: str) -> None:
        parts = [c for c in p.split("/") if c]
        for i in range(len(parts)):
            parent = "/" + "/".join(parts[: i + 1])
            if parent in self._files:
                raise FileExistsVFSError(
                    f"{self.name}: {parent} is a file, cannot be a directory"
                )
            self._dirs.add(parent)

    def listdir(self, path: str = "/") -> list[str]:
        """Immediate children (names, not paths) of a directory, sorted."""
        p = normalize(path)
        if p not in self._dirs:
            raise FileNotFoundVFSError(f"{self.name}: no directory {p}")
        prefix = p.rstrip("/") + "/"
        children = set()
        for candidate in list(self._files) + list(self._dirs):
            if candidate != p and candidate.startswith(prefix):
                children.add(candidate[len(prefix):].split("/", 1)[0])
        return sorted(children)

    def walk_files(self, path: str = "/") -> typing.Iterator[str]:
        """All file paths under ``path`` (sorted)."""
        p = normalize(path)
        prefix = "/" if p == "/" else p + "/"
        for fpath in sorted(self._files):
            if fpath == p or fpath.startswith(prefix):
                yield fpath

    # -- file ops -------------------------------------------------------------------
    def write(self, path: str, content: bytes, overwrite: bool = True) -> None:
        """Write ``content``; quota-checked net of any replaced file."""
        if not isinstance(content, (bytes, bytearray)):
            raise VFSError(f"content must be bytes, got {type(content).__name__}")
        p = normalize(path)
        if p in self._dirs:
            raise FileExistsVFSError(f"{self.name}: {p} is a directory")
        if p in self._files and not overwrite:
            raise FileExistsVFSError(f"{self.name}: {p} exists")
        delta = len(content) - len(self._files.get(p, b""))
        if self._used + delta > self.quota_bytes:
            raise QuotaExceededError(
                f"{self.name}: writing {len(content)} bytes to {p} exceeds "
                f"quota ({self._used + delta} > {self.quota_bytes})"
            )
        parent = p.rsplit("/", 1)[0] or "/"
        self._add_ancestors(parent)
        self._files[p] = bytes(content)
        self._used += delta

    def read(self, path: str) -> bytes:
        p = normalize(path)
        try:
            return self._files[p]
        except KeyError:
            raise FileNotFoundVFSError(f"{self.name}: no file {p}") from None

    def append(self, path: str, content: bytes) -> None:
        """Append to a file, creating it if absent."""
        existing = self._files.get(normalize(path), b"")
        self.write(path, existing + content)

    def delete(self, path: str) -> None:
        """Delete a file, or a directory recursively."""
        p = normalize(path)
        if p in self._files:
            self._used -= len(self._files.pop(p))
            return
        if p in self._dirs:
            if p == "/":
                raise VFSError(f"{self.name}: refusing to delete the root")
            prefix = p + "/"
            for fpath in [f for f in self._files if f.startswith(prefix)]:
                self._used -= len(self._files.pop(fpath))
            self._dirs = {d for d in self._dirs if d != p and not d.startswith(prefix)}
            return
        raise FileNotFoundVFSError(f"{self.name}: no such path {p}")

    def __repr__(self) -> str:
        return (
            f"<InMemoryFileSystem {self.name} files={len(self._files)} "
            f"used={self._used}B>"
        )
