"""Virtual filesystem: the UNICORE data spaces.

Paper section 4: "the data model used in UNICORE distinguishes between
data inside (Uspace) and outside (Xspace and data from the user's
workstation) of UNICORE.  All data needed in UNICORE for a job has to be
specified by the user and is imported into the Uspace.  Analogously data
created within UNICORE (in the Uspace) has to be exported to an external
file space."

- :mod:`repro.vfs.filesystem` — an in-memory filesystem with quotas;
- :mod:`repro.vfs.spaces` — Xspace (site file systems), Uspace (per-job
  UNICORE directory), and Workstation (the user's local files);
- :mod:`repro.vfs.transfer` — local copy primitives with byte accounting.
"""

from repro.vfs.errors import (
    FileExistsVFSError,
    FileNotFoundVFSError,
    QuotaExceededError,
    VFSError,
)
from repro.vfs.filesystem import InMemoryFileSystem
from repro.vfs.spaces import Uspace, UspaceManager, Workstation, Xspace
from repro.vfs.transfer import copy_file, copy_tree

__all__ = [
    "FileExistsVFSError",
    "FileNotFoundVFSError",
    "InMemoryFileSystem",
    "QuotaExceededError",
    "Uspace",
    "UspaceManager",
    "VFSError",
    "Workstation",
    "Xspace",
    "copy_file",
    "copy_tree",
]
