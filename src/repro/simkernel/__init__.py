"""Discrete-event simulation kernel.

Everything time-dependent in the reproduction — network transfers, batch
queues, NJS supervision loops — runs on this kernel.  It is a small,
deterministic, SimPy-flavoured engine: a priority queue of events driven
by :class:`Simulator`, with cooperative *processes* written as Python
generators that ``yield`` events (most commonly timeouts) to suspend.

Determinism is a design requirement (DESIGN.md section 6): given a seed
and a program, every run produces the identical event order.  Ties in
simulated time are broken by a monotonically increasing sequence number,
never by object identity.

Example
-------
>>> from repro.simkernel import Simulator
>>> sim = Simulator()
>>> log = []
>>> def worker(sim, name, delay):
...     yield sim.timeout(delay)
...     log.append((sim.now, name))
>>> _ = sim.process(worker(sim, "a", 2.0))
>>> _ = sim.process(worker(sim, "b", 1.0))
>>> sim.run()
>>> log
[(1.0, 'b'), (2.0, 'a')]
"""

from repro.simkernel.events import (
    AllOf,
    AnyOf,
    Event,
    EventAborted,
    Interrupt,
    Timeout,
)
from repro.simkernel.process import Process, ProcessDied
from repro.simkernel.engine import Simulator, StopSimulation
from repro.simkernel.resources import Container, SimQueue, Store
from repro.simkernel.rng import SeedSequenceFactory, derive_rng

__all__ = [
    "AllOf",
    "AnyOf",
    "Container",
    "Event",
    "EventAborted",
    "Interrupt",
    "Process",
    "ProcessDied",
    "SeedSequenceFactory",
    "SimQueue",
    "Simulator",
    "StopSimulation",
    "Store",
    "Timeout",
    "derive_rng",
]
