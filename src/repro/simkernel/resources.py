"""Shared simulation resources: stores, counters, and FIFO queues.

These are the synchronization primitives the higher tiers use: batch
queues hold incarnated jobs in a :class:`Store`, node pools are modeled
with :class:`Container`, and NJS worker loops block on :class:`SimQueue`.
"""

from __future__ import annotations

import math
import collections
import typing

from repro.simkernel.events import Event

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.engine import Simulator

__all__ = ["Store", "Container", "SimQueue"]


class Store:
    """An unbounded (or capacity-bounded) store of Python objects.

    ``put`` succeeds immediately unless the store is at capacity; ``get``
    returns an event that fires with the oldest item once one is available.
    FIFO on both sides, so consumers are served in arrival order.
    """

    def __init__(self, sim: "Simulator", capacity: float = math.inf) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = capacity
        self.items: collections.deque[object] = collections.deque()
        self._getters: collections.deque[Event] = collections.deque()
        self._putters: collections.deque[tuple[Event, object]] = collections.deque()

    def __len__(self) -> int:
        return len(self.items)

    def put(self, item: object) -> Event:
        """Add ``item``; the returned event fires when the item is stored."""
        ev = Event(self.sim, name="store.put")
        if len(self.items) < self.capacity:
            self.items.append(item)
            ev.succeed()
            self._dispatch()
        else:
            self._putters.append((ev, item))
        return ev

    def put_nowait(self, item: object) -> None:
        """Fire-and-forget ``put`` for callers that never block on it.

        Skips the ``store.put`` event allocation entirely — important on
        the message hot path, where every inbox push would otherwise cost
        one event-queue round trip.  Raises if the store is at capacity
        (a fire-and-forget put cannot wait).
        """
        if len(self.items) >= self.capacity:
            raise ValueError("put_nowait on a full store")
        self.items.append(item)
        self._dispatch()

    def get(self) -> Event:
        """The returned event fires with the next item."""
        ev = Event(self.sim, name="store.get")
        self._getters.append(ev)
        self._dispatch()
        return ev

    def _dispatch(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            getter.succeed(self.items.popleft())
            while self._putters and len(self.items) < self.capacity:
                put_ev, item = self._putters.popleft()
                self.items.append(item)
                put_ev.succeed()


class Container:
    """A continuous-quantity resource (e.g. a pool of compute nodes).

    ``get(n)`` blocks (as an event) until ``n`` units are available;
    ``put(n)`` returns units.  Requests are served FIFO — a large request
    at the head blocks smaller ones behind it, which is exactly the
    head-of-line behaviour a space-shared batch node pool exhibits (and
    what backfill schedulers then work around at a higher level).
    """

    def __init__(self, sim: "Simulator", capacity: float, init: float | None = None) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.sim = sim
        self.capacity = float(capacity)
        self.level = float(capacity if init is None else init)
        if not 0 <= self.level <= self.capacity:
            raise ValueError("init must be within [0, capacity]")
        self._waiters: collections.deque[tuple[Event, float]] = collections.deque()

    @property
    def available(self) -> float:
        return self.level

    @property
    def in_use(self) -> float:
        return self.capacity - self.level

    def get(self, amount: float) -> Event:
        """Acquire ``amount`` units; event fires when granted."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        if amount > self.capacity:
            raise ValueError(
                f"request for {amount} exceeds total capacity {self.capacity}"
            )
        ev = Event(self.sim, name="container.get")
        self._waiters.append((ev, float(amount)))
        self._dispatch()
        return ev

    def put(self, amount: float) -> None:
        """Return ``amount`` units to the pool."""
        if amount <= 0:
            raise ValueError("amount must be positive")
        if self.level + amount > self.capacity + 1e-9:
            raise ValueError("container overfull: returned more than acquired")
        self.level += amount
        self._dispatch()

    def _dispatch(self) -> None:
        while self._waiters and self._waiters[0][1] <= self.level:
            ev, amount = self._waiters.popleft()
            self.level -= amount
            ev.succeed(amount)


class SimQueue:
    """A FIFO message queue with blocking ``get`` — sugar over :class:`Store`.

    Used for mailbox-style communication between simulated components.
    """

    def __init__(self, sim: "Simulator") -> None:
        self._store = Store(sim)

    def __len__(self) -> int:
        return len(self._store)

    def push(self, item: object) -> None:
        self._store.put_nowait(item)

    def pop(self) -> Event:
        """Event that fires with the oldest item."""
        return self._store.get()
