"""The simulation engine: clock + event queue + run loop."""

from __future__ import annotations

import heapq
import typing
from itertools import count

from repro.simkernel.events import AllOf, AnyOf, Event, Timeout
from repro.simkernel.process import Process

__all__ = ["Simulator", "StopSimulation"]


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` from a callback."""


class _CallbackSlot:
    """A pre-bound callback sitting directly on the event heap.

    The hot path of the network layer schedules one callback per message;
    allocating a full :class:`Timeout` (event object + callback list +
    closure) for each one dominated the profile.  A slot holds just the
    function and its arguments and is dispatched by the run loop without
    touching the event machinery.
    """

    __slots__ = ("fn", "args", "cancelled")

    def __init__(self, fn: typing.Callable[..., object], args: tuple) -> None:
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Drop the callback; the heap entry is skipped when popped."""
        self.cancelled = True

    def __repr__(self) -> str:
        state = " cancelled" if self.cancelled else ""
        return f"<_CallbackSlot {getattr(self.fn, '__name__', self.fn)!r}{state}>"


class Simulator:
    """A deterministic discrete-event simulator.

    The simulator owns the clock (:attr:`now`) and the pending-event queue.
    Events scheduled at equal times are processed in scheduling order
    (FIFO), which keeps runs reproducible.

    Parameters
    ----------
    start:
        Initial value of the simulated clock (default ``0.0``).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list[tuple[float, int, Event | _CallbackSlot]] = []
        self._seq = count()
        self._active_process: Process | None = None
        self._processed_count = 0
        self._callbacks_run = 0
        self._peak_heap = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (instrumentation)."""
        return self._processed_count

    @property
    def events_processed(self) -> int:
        """Alias of :attr:`processed_events` (benchmark metric name)."""
        return self._processed_count

    def profile(self) -> dict[str, float]:
        """A snapshot of run-loop counters for throughput analysis."""
        return {
            "now": self._now,
            "events_processed": self._processed_count,
            "callbacks_run": self._callbacks_run,
            "heap_size": len(self._queue),
            "peak_heap_size": self._peak_heap,
        }

    # -- factories -----------------------------------------------------------
    def event(self, name: str | None = None) -> Event:
        """Create a new pending event."""
        return Event(self, name=name)

    def timeout(
        self, delay: float, value: object = None, name: str | None = None
    ) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(
        self,
        generator: typing.Generator[Event, object, object],
        name: str | None = None,
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Iterable[Event]) -> AllOf:
        """An event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: typing.Iterable[Event]) -> AnyOf:
        """An event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        """Place a triggered event on the queue ``delay`` from now."""
        queue = self._queue
        heapq.heappush(queue, (self._now + delay, next(self._seq), event))
        if len(queue) > self._peak_heap:
            self._peak_heap = len(queue)

    def schedule_callback(
        self,
        delay: float,
        fn: typing.Callable[..., object],
        *args: object,
        name: str | None = None,
    ) -> _CallbackSlot:
        """Run ``fn(*args)`` ``delay`` time units from now.

        Returns a cancellable slot.  Unlike :meth:`timeout`, no event
        object is allocated: the slot goes straight on the heap and the
        run loop invokes ``fn`` directly, which makes this the cheap path
        for fire-and-forget work (message delivery, timers that are never
        waited on).  ``name`` is accepted for API compatibility.
        """
        del name  # slots carry no name; kept for call-site compatibility
        slot = _CallbackSlot(fn, args)
        queue = self._queue
        heapq.heappush(queue, (self._now + delay, next(self._seq), slot))
        if len(queue) > self._peak_heap:
            self._peak_heap = len(queue)
        return slot

    # -- run loop ------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise RuntimeError("step() on an empty event queue")
        when, _, item = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - guarded by _schedule
            raise RuntimeError("event scheduled in the past")
        self._now = when
        if type(item) is _CallbackSlot:
            if not item.cancelled:
                self._processed_count += 1
                self._callbacks_run += 1
                item.fn(*item.args)
            return
        event = typing.cast(Event, item)
        callbacks = event.callbacks
        event.callbacks = None
        self._processed_count += 1
        assert callbacks is not None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            exc = typing.cast(BaseException, event._value)
            raise exc

    def run_until_idle(self, max_events: int | None = None) -> int:
        """Drain the queue in a tight batched loop; returns events processed.

        Equivalent to ``run(until=None)`` but without per-event method
        dispatch — the run loop keeps local bindings and inlines the slot
        fast path.  Stops early after ``max_events`` items when given.
        Failure events that nobody defused still raise, exactly as in
        :meth:`step`.
        """
        queue = self._queue
        pop = heapq.heappop
        processed = 0
        budget = -1 if max_events is None else max_events
        while queue and processed != budget:
            when, _, item = pop(queue)
            self._now = when
            if type(item) is _CallbackSlot:
                if item.cancelled:
                    continue
                self._processed_count += 1
                self._callbacks_run += 1
                item.fn(*item.args)
                processed += 1
                continue
            event = typing.cast(Event, item)
            callbacks = event.callbacks
            event.callbacks = None
            self._processed_count += 1
            assert callbacks is not None
            for cb in callbacks:
                cb(event)
            if not event._ok and not event._defused:
                raise typing.cast(BaseException, event._value)
            processed += 1
        return processed

    def run(self, until: "float | Event | None" = None) -> object:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the event queue drains;
            a number
                run until the clock reaches that time;
            an :class:`Event`
                run until that event is processed, returning its value (or
                raising its exception).
        """
        timed = False
        if until is None:
            stop_at = float("inf")
            stop_event: Event | None = None
        elif isinstance(until, Event):
            stop_at = float("inf")
            stop_event = until
            if stop_event.callbacks is None:
                # Already processed.
                if stop_event._ok:
                    return stop_event._value
                raise typing.cast(BaseException, stop_event._value)
            stop_event.callbacks.append(self._stop_callback)
        else:
            stop_at = float(until)
            stop_event = None
            timed = True
            if stop_at < self._now:
                raise ValueError(
                    f"cannot run until {stop_at} (clock already at {self._now})"
                )

        try:
            while self._queue:
                if self._queue[0][0] > stop_at:
                    self._now = stop_at
                    return None
                self.step()
        except StopSimulation:
            assert stop_event is not None
            if stop_event._ok:
                return stop_event._value
            exc = typing.cast(BaseException, stop_event._value)
            stop_event._defused = True
            raise exc from None
        if stop_event is not None:
            raise RuntimeError(
                f"simulation queue drained before {stop_event!r} triggered"
            )
        if timed:
            self._now = stop_at
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        event._defused = True
        raise StopSimulation()

    def __repr__(self) -> str:
        return f"<Simulator t={self._now:.6g} queued={len(self._queue)}>"
