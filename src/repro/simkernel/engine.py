"""The simulation engine: clock + event queue + run loop."""

from __future__ import annotations

import heapq
import typing
from itertools import count

from repro.simkernel.events import AllOf, AnyOf, Event, Timeout
from repro.simkernel.process import Process

__all__ = ["Simulator", "StopSimulation"]


class StopSimulation(Exception):
    """Raised internally to halt :meth:`Simulator.run` from a callback."""


class Simulator:
    """A deterministic discrete-event simulator.

    The simulator owns the clock (:attr:`now`) and the pending-event queue.
    Events scheduled at equal times are processed in scheduling order
    (FIFO), which keeps runs reproducible.

    Parameters
    ----------
    start:
        Initial value of the simulated clock (default ``0.0``).
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)
        self._queue: list[tuple[float, int, Event]] = []
        self._seq = count()
        self._active_process: Process | None = None
        self._processed_count = 0

    # -- clock -------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._now

    @property
    def active_process(self) -> Process | None:
        """The process currently being resumed, if any."""
        return self._active_process

    @property
    def processed_events(self) -> int:
        """Total number of events processed so far (instrumentation)."""
        return self._processed_count

    # -- factories -----------------------------------------------------------
    def event(self, name: str | None = None) -> Event:
        """Create a new pending event."""
        return Event(self, name=name)

    def timeout(
        self, delay: float, value: object = None, name: str | None = None
    ) -> Timeout:
        """Create an event that fires ``delay`` time units from now."""
        return Timeout(self, delay, value=value, name=name)

    def process(
        self,
        generator: typing.Generator[Event, object, object],
        name: str | None = None,
    ) -> Process:
        """Start a new process running ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: typing.Iterable[Event]) -> AllOf:
        """An event that fires when all of ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: typing.Iterable[Event]) -> AnyOf:
        """An event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)

    # -- scheduling ----------------------------------------------------------
    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        """Place a triggered event on the queue ``delay`` from now."""
        heapq.heappush(self._queue, (self._now + delay, next(self._seq), event))

    def schedule_callback(
        self,
        delay: float,
        fn: typing.Callable[..., object],
        *args: object,
        name: str | None = None,
    ) -> Event:
        """Run ``fn(*args)`` ``delay`` time units from now; returns the event."""
        ev = Timeout(self, delay, name=name or f"callback:{fn.__name__}")
        assert ev.callbacks is not None
        ev.callbacks.append(lambda _ev: fn(*args))
        return ev

    # -- run loop ------------------------------------------------------------
    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if the queue is empty."""
        return self._queue[0][0] if self._queue else float("inf")

    def step(self) -> None:
        """Process exactly one event (advancing the clock to it)."""
        if not self._queue:
            raise RuntimeError("step() on an empty event queue")
        when, _, event = heapq.heappop(self._queue)
        if when < self._now:  # pragma: no cover - guarded by _schedule
            raise RuntimeError("event scheduled in the past")
        self._now = when
        callbacks = event.callbacks
        event.callbacks = None
        self._processed_count += 1
        assert callbacks is not None
        for cb in callbacks:
            cb(event)
        if not event._ok and not event._defused:
            exc = typing.cast(BaseException, event._value)
            raise exc

    def run(self, until: "float | Event | None" = None) -> object:
        """Run the simulation.

        Parameters
        ----------
        until:
            ``None``
                run until the event queue drains;
            a number
                run until the clock reaches that time;
            an :class:`Event`
                run until that event is processed, returning its value (or
                raising its exception).
        """
        timed = False
        if until is None:
            stop_at = float("inf")
            stop_event: Event | None = None
        elif isinstance(until, Event):
            stop_at = float("inf")
            stop_event = until
            if stop_event.callbacks is None:
                # Already processed.
                if stop_event._ok:
                    return stop_event._value
                raise typing.cast(BaseException, stop_event._value)
            stop_event.callbacks.append(self._stop_callback)
        else:
            stop_at = float(until)
            stop_event = None
            timed = True
            if stop_at < self._now:
                raise ValueError(
                    f"cannot run until {stop_at} (clock already at {self._now})"
                )

        try:
            while self._queue:
                if self._queue[0][0] > stop_at:
                    self._now = stop_at
                    return None
                self.step()
        except StopSimulation:
            assert stop_event is not None
            if stop_event._ok:
                return stop_event._value
            exc = typing.cast(BaseException, stop_event._value)
            stop_event._defused = True
            raise exc
        if stop_event is not None:
            raise RuntimeError(
                f"simulation queue drained before {stop_event!r} triggered"
            )
        if timed:
            self._now = stop_at
        return None

    @staticmethod
    def _stop_callback(event: Event) -> None:
        event._defused = True
        raise StopSimulation()

    def __repr__(self) -> str:
        return f"<Simulator t={self._now:.6g} queued={len(self._queue)}>"
