"""Event primitives for the simulation kernel.

An :class:`Event` is a one-shot occurrence in simulated time.  Events move
through three states: *pending* (created, not yet triggered), *triggered*
(scheduled onto the simulator's queue with a value or an error), and
*processed* (callbacks have run).  Processes wait on events by yielding
them; composite events (:class:`AllOf`, :class:`AnyOf`) let a process wait
on conjunctions and disjunctions.
"""

from __future__ import annotations

import typing

if typing.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simkernel.engine import Simulator

__all__ = [
    "Event",
    "Timeout",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "EventAborted",
    "PENDING",
]


class _PendingType:
    """Sentinel for an event value that has not been set."""

    _instance: "_PendingType | None" = None

    def __new__(cls) -> "_PendingType":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<PENDING>"


PENDING = _PendingType()


class Interrupt(Exception):
    """Raised inside a process that another process interrupted.

    The ``cause`` is whatever the interrupter supplied; it is carried on
    ``args[0]``.
    """

    @property
    def cause(self) -> object:
        return self.args[0] if self.args else None


class EventAborted(Exception):
    """Raised when waiting on an event that failed (triggered with an error)."""

    def __init__(self, cause: BaseException) -> None:
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    Parameters
    ----------
    sim:
        The simulator this event belongs to.
    name:
        Optional label used in ``repr`` and error messages.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, sim: "Simulator", name: str | None = None) -> None:
        self.sim = sim
        self.name = name
        #: Callables invoked with this event once it is processed.  ``None``
        #: once the event has been processed (further appends are an error).
        self.callbacks: list[typing.Callable[["Event"], None]] | None = []
        self._value: object = PENDING
        self._ok: bool | None = None
        self._defused = False

    # -- state ------------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled with a value or error."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been invoked."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only meaningful once triggered."""
        if self._ok is None:
            raise RuntimeError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> object:
        """The value the event was triggered with (or the exception)."""
        if self._value is PENDING:
            raise RuntimeError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering -------------------------------------------------------
    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self.sim._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an error.

        A process waiting on the event will see the exception re-raised at
        its ``yield``.  If nobody waits, the simulator raises the error at
        processing time to avoid silently swallowed failures — call
        :meth:`defuse` to opt out.
        """
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        if self._value is not PENDING:
            raise RuntimeError(f"{self!r} has already been triggered")
        self._ok = False
        self._value = exception
        self.sim._schedule(self)
        return self

    def trigger(self, event: "Event") -> None:
        """Trigger this event with the state of another event (chaining)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.fail(typing.cast(BaseException, event._value))

    def defuse(self) -> "Event":
        """Mark a failed event as handled so the simulator will not crash."""
        self._defused = True
        return self

    # -- composition --------------------------------------------------------
    def __and__(self, other: "Event") -> "AllOf":
        return AllOf(self.sim, [self, other])

    def __or__(self, other: "Event") -> "AnyOf":
        return AnyOf(self.sim, [self, other])

    def __repr__(self) -> str:
        label = self.name or self.__class__.__name__
        state = (
            "processed"
            if self.processed
            else "triggered"
            if self.triggered
            else "pending"
        )
        return f"<{label} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` units of simulated time after creation."""

    __slots__ = ("delay",)

    def __init__(
        self,
        sim: "Simulator",
        delay: float,
        value: object = None,
        name: str | None = None,
    ) -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay {delay!r}")
        super().__init__(sim, name=name or f"Timeout({delay})")
        self.delay = float(delay)
        self._ok = True
        self._value = value
        sim._schedule(self, delay=self.delay)


class _Condition(Event):
    """Base for AllOf/AnyOf: waits on a set of events."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: typing.Iterable[Event]) -> None:
        super().__init__(sim)
        self.events: tuple[Event, ...] = tuple(events)
        self._count = 0
        for ev in self.events:
            if ev.sim is not sim:
                raise ValueError("cannot mix events from different simulators")
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            if ev.processed:
                self._check(ev)
            else:
                assert ev.callbacks is not None
                ev.callbacks.append(self._check)

    def _collect(self) -> dict[Event, object]:
        return {ev: ev._value for ev in self.events if ev.processed and ev._ok}

    def _check(self, event: Event) -> None:
        raise NotImplementedError


class AllOf(_Condition):
    """Fires when every constituent event has fired; fails fast on failure."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(typing.cast(BaseException, event._value))
            return
        self._count += 1
        if self._count == len(self.events):
            self.succeed(self._collect())


class AnyOf(_Condition):
    """Fires as soon as any constituent event fires."""

    __slots__ = ()

    def _check(self, event: Event) -> None:
        if self.triggered:
            return
        if not event._ok:
            event._defused = True
            self.fail(typing.cast(BaseException, event._value))
            return
        self.succeed({event: event._value})
