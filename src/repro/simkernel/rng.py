"""Deterministic random-number plumbing.

Every stochastic component in the reproduction receives its generator from
here, derived from a single root seed, so a whole multi-site simulation is
reproducible from one integer.  Components are keyed by *name* rather than
creation order, so adding a new component does not perturb the streams of
existing ones.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["derive_rng", "SeedSequenceFactory"]


def _stable_hash(root_seed: int, name: str) -> int:
    """A 64-bit seed derived deterministically from ``(root_seed, name)``.

    Uses SHA-256 rather than Python's ``hash`` (which is salted per
    interpreter run) so seeds are stable across processes.
    """
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


def derive_rng(root_seed: int, name: str) -> np.random.Generator:
    """A NumPy generator for the component called ``name``."""
    return np.random.default_rng(_stable_hash(root_seed, name))


class SeedSequenceFactory:
    """Hands out named, independent random generators from one root seed.

    >>> f = SeedSequenceFactory(42)
    >>> a = f.rng("workload")
    >>> b = f.rng("link-loss")
    >>> f2 = SeedSequenceFactory(42)
    >>> bool((f2.rng("workload").random(4) == a.random(4)).all())
    True
    """

    def __init__(self, root_seed: int) -> None:
        self.root_seed = int(root_seed)
        self._issued: set[str] = set()

    def rng(self, name: str) -> np.random.Generator:
        """An independent generator for ``name`` (re-issuable: same stream)."""
        self._issued.add(name)
        return derive_rng(self.root_seed, name)

    def seed_for(self, name: str) -> int:
        """The raw 64-bit integer seed for ``name`` (for ``random.Random``)."""
        self._issued.add(name)
        return _stable_hash(self.root_seed, name)

    @property
    def issued_names(self) -> frozenset[str]:
        """Names of all streams issued so far (debugging aid)."""
        return frozenset(self._issued)
