"""Generator-based cooperative processes.

A process is a Python generator that yields :class:`~repro.simkernel.events.Event`
instances.  Each yield suspends the process until the yielded event is
processed; the event's value is sent back into the generator (or its
exception thrown in).  A :class:`Process` is itself an event that fires
when the generator returns, carrying the generator's return value, so
processes can wait on each other.
"""

from __future__ import annotations

import typing

from repro.simkernel.events import Event, Interrupt, PENDING

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel.engine import Simulator

__all__ = ["Process", "ProcessDied"]


class ProcessDied(Exception):
    """Raised when interacting with a process that has already terminated."""


class Process(Event):
    """A running generator coroutine inside the simulator.

    Notes
    -----
    * ``yield event`` suspends until ``event`` is processed.
    * The process *fails* (propagating to waiters) if the generator raises.
    * :meth:`interrupt` throws :class:`Interrupt` into the generator at the
      current simulated time.
    """

    __slots__ = ("generator", "_target")

    def __init__(
        self,
        sim: "Simulator",
        generator: typing.Generator[Event, object, object],
        name: str | None = None,
    ) -> None:
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(
                f"Process needs a generator, got {type(generator).__name__}; "
                "did you call the process function without arguments?"
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        #: The event this process is currently waiting on, if suspended.
        self._target: Event | None = None
        # Bootstrap: resume the generator at the current simulated time.
        init = Event(sim, name=f"init:{self.name}")
        init.callbacks.append(self._resume)  # type: ignore[union-attr]
        init.succeed(None)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return self._value is PENDING

    @property
    def target(self) -> Event | None:
        """The event the process is currently waiting on (None if running)."""
        return self._target

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        The interrupted process stops waiting on its current target (the
        target event itself is unaffected and may still fire).
        """
        if not self.is_alive:
            raise ProcessDied(f"{self!r} has terminated; cannot interrupt")
        if self._target is None:
            raise RuntimeError(f"{self!r} is not waiting; cannot interrupt now")
        target = self._target
        if target.callbacks is not None and self._resume in target.callbacks:
            target.callbacks.remove(self._resume)
        self._target = None
        carrier = Event(self.sim, name=f"interrupt:{self.name}")
        carrier.callbacks.append(self._resume)  # type: ignore[union-attr]
        carrier.fail(Interrupt(cause))
        carrier.defuse()

    # -- engine plumbing ----------------------------------------------------
    def _resume(self, event: Event) -> None:
        """Advance the generator with ``event``'s outcome."""
        self.sim._active_process = self
        self._target = None
        try:
            if event._ok:
                next_ev = self.generator.send(event._value)
            else:
                exc = typing.cast(BaseException, event._value)
                event._defused = True
                next_ev = self.generator.throw(exc)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as err:
            if isinstance(err, (KeyboardInterrupt, SystemExit)):  # pragma: no cover
                raise
            self.fail(err)
            return
        finally:
            self.sim._active_process = None

        if not isinstance(next_ev, Event):
            # Kill the generator with a helpful error rather than hanging.
            msg = (
                f"process {self.name!r} yielded {next_ev!r}, which is not an "
                "Event; yield sim.timeout(...) or another event"
            )
            try:
                self.generator.throw(TypeError(msg))
            except StopIteration as stop:
                self.succeed(stop.value)
            except BaseException as err:
                self.fail(err)
            return

        if next_ev.sim is not self.sim:
            raise ValueError("process yielded an event from a different simulator")

        if next_ev.processed:
            # Already done: resume immediately (but through the queue so the
            # event order stays deterministic).
            carrier = Event(self.sim, name=f"replay:{self.name}")
            carrier.callbacks.append(self._resume)  # type: ignore[union-attr]
            if next_ev._ok:
                carrier.succeed(next_ev._value)
            else:
                carrier.fail(typing.cast(BaseException, next_ev._value))
                carrier.defuse()
            self._target = carrier
        else:
            assert next_ev.callbacks is not None
            next_ev.callbacks.append(self._resume)
            self._target = next_ev
