"""The typed diagnostic model shared by every analysis pass.

The paper's NJS "checks the AJO for consistency" before incarnation;
here every consistency finding — structural, dataflow, or resource — is
one :class:`Diagnostic` with a *stable* code, a severity, and the
action-id path locating it in the job tree.  Codes are grouped by pass:

* ``AJO1xx`` — tree structure (ids, destinations, cycles);
* ``AJO2xx`` — Uspace dataflow (staging, races, dead imports);
* ``AJO3xx`` — resource, software, and incarnation feasibility.

Codes are a wire contract: the gateway carries the primary code of a
rejected consignment in ``Reply.error_code``, and ``repro lint --json``
emits them for CI tooling, so they must never be renumbered.
"""

from __future__ import annotations

import enum
import typing
from dataclasses import dataclass

from repro.ajo.errors import ValidationError

__all__ = ["Severity", "Diagnostic", "AnalysisReport", "AnalysisError"]


class Severity(enum.Enum):
    """How bad a finding is: errors block consignment, the rest inform."""

    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


@dataclass(frozen=True, slots=True)
class Diagnostic:
    """One analysis finding, located by its action-id path.

    ``path`` walks the job tree from the root AJO down to the offending
    action (the analyzer's notion of a source span); ``code`` is the
    stable ``AJOnnn`` identifier tools key on.
    """

    code: str
    severity: Severity
    message: str
    path: tuple[str, ...]

    @property
    def action_id(self) -> str:
        """The id of the action the finding anchors to."""
        return self.path[-1] if self.path else ""

    def render(self) -> str:
        where = "/".join(self.path)
        return f"{self.code} {self.severity.value} @{where}: {self.message}"

    def to_dict(self) -> dict[str, typing.Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "path": list(self.path),
        }


@dataclass(frozen=True, slots=True)
class AnalysisReport:
    """All findings of one ``analyze_ajo`` run, in deterministic order."""

    job_id: str
    job_name: str
    diagnostics: tuple[Diagnostic, ...]

    @property
    def errors(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.WARNING)

    @property
    def notes(self) -> tuple[Diagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.NOTE)

    @property
    def ok(self) -> bool:
        """True when nothing blocks consignment (warnings/notes allowed)."""
        return not self.errors

    def summary(self) -> str:
        counts = (
            f"{len(self.errors)} error(s), {len(self.warnings)} warning(s), "
            f"{len(self.notes)} note(s)"
        )
        first = f"; first: {self.errors[0].render()}" if self.errors else ""
        return f"job {self.job_name!r} ({self.job_id}): {counts}{first}"

    def render(self) -> str:
        """Multi-line human-readable report (``repro lint`` output)."""
        lines = [self.summary()]
        lines.extend("  " + d.render() for d in self.diagnostics)
        return "\n".join(lines)

    def to_dict(self) -> dict[str, typing.Any]:
        return {
            "job_id": self.job_id,
            "job_name": self.job_name,
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "notes": len(self.notes),
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }


class AnalysisError(ValidationError):
    """A static-analysis rejection: the report's errors block the job.

    Subclasses :class:`~repro.ajo.errors.ValidationError` so existing
    client-side error handling keeps working; the instance ``code`` is
    the primary diagnostic code (e.g. ``"AJO201"``), which the protocol
    edge carries in ``Reply.error_code``.
    """

    def __init__(self, report: AnalysisReport) -> None:
        super().__init__(f"static analysis rejected AJO: {report.summary()}")
        self.report = report
        if report.errors:
            self.code = report.errors[0].code
