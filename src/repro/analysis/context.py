"""What the analyzer may assume about its surroundings.

The same passes run at three vantage points with different knowledge:

* the **JPA** knows the resource pages the gateway served for its home
  Usite and nothing about routes or queues ("supporting the user in
  creating a job suitable for the selected destination system",
  section 5.4);
* the **NJS** knows its Vsites' pages, batch dialects, and queues, plus
  which peer Usites it has routes to — and must re-check arrivals
  ("never trust the client");
* the **CLI** (``repro lint``) may know nothing at all, in which case
  only the environment-free structure and dataflow passes have teeth.

:class:`AnalysisContext` captures that vantage point; absent information
silently disables the checks that need it rather than producing noise.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

if typing.TYPE_CHECKING:
    from repro.batch.base import QueueConfig
    from repro.resources.page import ResourcePage

__all__ = ["AnalysisContext"]


@dataclass(frozen=True)
class AnalysisContext:
    """Environment knowledge available to the feasibility pass.

    Attributes
    ----------
    pages:
        Resource page per known Vsite name.
    dialects:
        Batch-dialect key per known Vsite name (enables the incarnation
        dry-run lint).
    queues:
        Queue configurations per known Vsite name (enables the no-queue-
        admits lint).
    local_usite:
        The Usite whose groups this analyzer is responsible for; groups
        destined elsewhere are only route-checked.  Empty means "no site
        perspective" (CLI lint): every group is checked against whatever
        pages are present.
    known_usites:
        Usites reachable from here (the NJS's peer routes).  ``None``
        disables route checks entirely (client/CLI).
    require_vsites:
        Server-side strictness: a local group naming a Vsite with no
        page is an error rather than "someone else's problem".
    prestaged:
        Uspace paths guaranteed present before the root group starts
        (forward-staged files of a forwarded sub-AJO).
    """

    pages: typing.Mapping[str, "ResourcePage"] = field(default_factory=dict)
    dialects: typing.Mapping[str, str] = field(default_factory=dict)
    queues: typing.Mapping[str, "tuple[QueueConfig, ...]"] = field(default_factory=dict)
    local_usite: str = ""
    known_usites: frozenset[str] | None = None
    require_vsites: bool = False
    prestaged: frozenset[str] = frozenset()

    @classmethod
    def for_session(cls, session: typing.Any) -> "AnalysisContext":
        """The JPA's client-side vantage point over a UnicoreSession."""
        return cls(
            pages=dict(session.resource_pages),
            local_usite=session.usite,
        )

    @classmethod
    def for_njs(
        cls,
        njs: typing.Any,
        prestaged: typing.Iterable[str] | None = None,
    ) -> "AnalysisContext":
        """The NJS's server-side vantage point (pages, dialects, routes)."""
        vsites = njs.vsites
        return cls(
            pages={name: v.resource_page for name, v in vsites.items()},
            dialects={name: v.machine.dialect for name, v in vsites.items()},
            queues={
                name: tuple(v.batch.queues.values()) for name, v in vsites.items()
            },
            local_usite=njs.usite_name,
            known_usites=frozenset(njs._peer_routes),
            require_vsites=True,
            prestaged=frozenset(prestaged or ()),
        )
