"""Pass 3 — resource, software, and incarnation feasibility (``AJO3xx``).

Folds :func:`repro.resources.check.check_request` and the software
catalogue into a whole-tree walk: every job group is checked against its
destination Vsite's resource page (recursively, sub-AJOs included), the
route table is consulted for forwarded groups and transfers, and each
execute task is dry-run through the destination's batch dialect — the
script is rendered and parsed back without ever being submitted, exactly
the wrong-dialect rejection a real batch host would produce, caught at
consign time instead.

Everything here is vantage-point dependent: checks silently stand down
when the :class:`~repro.analysis.context.AnalysisContext` lacks the
page, queue, dialect, or route knowledge they need.
"""

from __future__ import annotations

from repro.ajo.job import AbstractJobObject
from repro.ajo.tasks import ExecuteTask, TransferTask
from repro.analysis.context import AnalysisContext
from repro.analysis.diagnostics import Diagnostic, Severity
from repro.batch.dialects import Dialect, dialect_for
from repro.batch.errors import BatchError
from repro.resources.check import check_request

__all__ = [
    "feasibility_pass",
    "CODE_UNKNOWN_VSITE",
    "CODE_RESOURCE_VIOLATION",
    "CODE_MISSING_SOFTWARE",
    "CODE_NO_ROUTE",
    "CODE_TRANSFER_NO_ROUTE",
    "CODE_NO_QUEUE",
    "CODE_DIALECT_DRY_RUN",
    "CODE_TRUNCATED_RESOURCE",
]

CODE_UNKNOWN_VSITE = "AJO301"
CODE_RESOURCE_VIOLATION = "AJO302"
CODE_MISSING_SOFTWARE = "AJO303"
CODE_NO_ROUTE = "AJO304"
CODE_TRANSFER_NO_ROUTE = "AJO305"
CODE_NO_QUEUE = "AJO306"
CODE_DIALECT_DRY_RUN = "AJO307"
CODE_TRUNCATED_RESOURCE = "AJO308"


def feasibility_pass(
    job: AbstractJobObject, context: AnalysisContext
) -> list[Diagnostic]:
    """Feasibility diagnostics for every group the context can judge."""
    diags: list[Diagnostic] = []
    _check_group(job, (job.id,), context, diags)
    return diags


def _is_local(group: AbstractJobObject, context: AnalysisContext) -> bool:
    if not context.local_usite:
        return True  # no site perspective: judge whatever pages exist
    return group.usite in ("", context.local_usite)


def _check_group(
    group: AbstractJobObject,
    path: tuple[str, ...],
    context: AnalysisContext,
    diags: list[Diagnostic],
) -> None:
    if not _is_local(group, context):
        # Destined elsewhere: the remote NJS re-checks on arrival; all we
        # can verify here is that a route exists to hand it over.
        if (
            context.known_usites is not None
            and group.usite not in context.known_usites
        ):
            diags.append(
                Diagnostic(
                    CODE_NO_ROUTE,
                    Severity.ERROR,
                    f"no route to Usite {group.usite!r} for job group "
                    f"{group.id} ({group.name!r})",
                    path,
                )
            )
        return

    if group.tasks() and group.vsite:
        page = context.pages.get(group.vsite)
        if page is None:
            if context.require_vsites:
                diags.append(
                    Diagnostic(
                        CODE_UNKNOWN_VSITE,
                        Severity.ERROR,
                        f"unknown Vsite {group.vsite!r} for job group "
                        f"{group.id} (available: {sorted(context.pages)})",
                        path,
                    )
                )
            # Client side: no page served for this Vsite — the
            # destination NJS is the authority, stand down.
        else:
            for task in group.tasks():
                result = check_request(page, task.resources, None)
                if not result.ok:
                    diags.append(
                        Diagnostic(
                            CODE_RESOURCE_VIOLATION,
                            Severity.ERROR,
                            f"task {task.name!r}: {result.summary()}",
                            path + (task.id,),
                        )
                    )
                for kind, name in task.required_software():
                    if not page.software.has(kind, name):
                        diags.append(
                            Diagnostic(
                                CODE_MISSING_SOFTWARE,
                                Severity.ERROR,
                                f"task {task.name!r} needs {kind} {name!r} "
                                f"which {group.vsite} does not offer",
                                path + (task.id,),
                            )
                        )
            _incarnation_dry_run(group, path, context, diags)

    for task in group.tasks():
        if (
            isinstance(task, TransferTask)
            and context.known_usites is not None
            and task.destination_usite != context.local_usite
            and task.destination_usite not in context.known_usites
        ):
            diags.append(
                Diagnostic(
                    CODE_TRANSFER_NO_ROUTE,
                    Severity.WARNING,
                    f"transfer task {task.id} targets Usite "
                    f"{task.destination_usite!r} to which no route is known; "
                    "it will fail at run time unless one appears",
                    path + (task.id,),
                )
            )

    for sub in group.sub_jobs():
        _check_group(sub, path + (sub.id,), context, diags)


def _incarnation_dry_run(
    group: AbstractJobObject,
    path: tuple[str, ...],
    context: AnalysisContext,
    diags: list[Diagnostic],
) -> None:
    """Render-and-parse-back each execute task without submitting it."""
    queues = context.queues.get(group.vsite, ())
    dialect_key = context.dialects.get(group.vsite)
    dialect: Dialect | None = None
    if dialect_key is not None:
        try:
            dialect = dialect_for(dialect_key)
        except BatchError as err:
            diags.append(
                Diagnostic(
                    CODE_DIALECT_DRY_RUN,
                    Severity.ERROR,
                    f"Vsite {group.vsite}: {err}",
                    path,
                )
            )

    for task in group.tasks():
        if not isinstance(task, ExecuteTask):
            continue
        if queues:
            admitting = [q for q in queues if not q.admits(task.resources)]
            if not admitting:
                problems = "; ".join(queues[0].admits(task.resources))
                diags.append(
                    Diagnostic(
                        CODE_NO_QUEUE,
                        Severity.WARNING,
                        f"no queue at {group.vsite} admits task {task.name!r} "
                        f"(e.g. {problems})",
                        path + (task.id,),
                    )
                )
        if dialect is not None:
            queue_name = queues[0].name if queues else "batch"
            script = dialect.render_script(
                task.name, queue_name, task.resources, ["true"]
            )
            try:
                dialect.parse_directives(script)
            except BatchError as err:
                diags.append(
                    Diagnostic(
                        CODE_DIALECT_DRY_RUN,
                        Severity.ERROR,
                        f"task {task.name!r} does not incarnate for "
                        f"{dialect.display_name} at {group.vsite}: {err}",
                        path + (task.id,),
                    )
                )
            for axis in ("time_s", "memory_mb"):
                value = getattr(task.resources, axis)
                if 0 < value < 1:
                    diags.append(
                        Diagnostic(
                            CODE_TRUNCATED_RESOURCE,
                            Severity.WARNING,
                            f"task {task.name!r} requests {axis}={value}, "
                            f"which the {dialect.display_name} directives "
                            "truncate to zero",
                            path + (task.id,),
                        )
                    )
