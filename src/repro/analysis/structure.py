"""Pass 1 — tree structure (``AJO1xx``).

The checks ``ajo/validate.py`` historically enforced, re-expressed as
diagnostics so structural, dataflow, and resource findings share one
report: unique ids, acyclic groups, destinations named, user identity
present, transfers leaving their own Usite.  ``validate_ajo`` remains a
thin wrapper that raises on the first error this pass emits.
"""

from __future__ import annotations

from repro.ajo.dag import topological_order
from repro.ajo.errors import DependencyCycleError
from repro.ajo.job import AbstractJobObject
from repro.ajo.tasks import TransferTask
from repro.analysis.diagnostics import Diagnostic, Severity

__all__ = [
    "structure_pass",
    "CODE_NO_USER",
    "CODE_DUPLICATE_ID",
    "CODE_NO_VSITE",
    "CODE_CYCLE",
    "CODE_SELF_TRANSFER",
    "CODE_EMPTY_GROUP",
]

CODE_NO_USER = "AJO101"
CODE_DUPLICATE_ID = "AJO102"
CODE_NO_VSITE = "AJO103"
CODE_CYCLE = "AJO104"
CODE_SELF_TRANSFER = "AJO105"
CODE_EMPTY_GROUP = "AJO106"


def structure_pass(
    job: AbstractJobObject, *, require_user: bool = True
) -> list[Diagnostic]:
    """Structural diagnostics for the whole tree, in deterministic order.

    ``require_user`` is False for sub-AJOs forwarded between NJSs, which
    inherit the user identity from the root consignment.
    """
    diags: list[Diagnostic] = []
    root_path = (job.id,)

    if require_user and not job.user_dn:
        diags.append(
            Diagnostic(
                CODE_NO_USER,
                Severity.ERROR,
                f"root AJO {job.id} carries no user DN; the certificate DN is "
                "the unique UNICORE user identification",
                root_path,
            )
        )

    seen_ids: set[str] = set()
    for action in job.walk():
        if action.id in seen_ids:
            diags.append(
                Diagnostic(
                    CODE_DUPLICATE_ID,
                    Severity.ERROR,
                    f"duplicate action id {action.id} in AJO tree",
                    root_path + (action.id,),
                )
            )
        seen_ids.add(action.id)

    _group_checks(job, root_path, diags)
    return diags


def _group_checks(
    group: AbstractJobObject, path: tuple[str, ...], diags: list[Diagnostic]
) -> None:
    if group.tasks() and not group.vsite:
        diags.append(
            Diagnostic(
                CODE_NO_VSITE,
                Severity.ERROR,
                f"job group {group.id} ({group.name!r}) contains tasks but "
                "names no destination Vsite",
                path,
            )
        )
    try:
        topological_order(group)
    except DependencyCycleError as err:
        diags.append(Diagnostic(CODE_CYCLE, Severity.ERROR, str(err), path))

    for task in group.tasks():
        if isinstance(task, TransferTask) and task.destination_usite == group.usite:
            diags.append(
                Diagnostic(
                    CODE_SELF_TRANSFER,
                    Severity.ERROR,
                    f"transfer task {task.id} targets its own Usite "
                    f"{group.usite!r}; use an export instead",
                    path + (task.id,),
                )
            )

    if not group.children:
        diags.append(
            Diagnostic(
                CODE_EMPTY_GROUP,
                Severity.NOTE,
                f"job group {group.id} ({group.name!r}) contains no actions",
                path,
            )
        )

    for sub in group.sub_jobs():
        _group_checks(sub, path + (sub.id,), diags)
