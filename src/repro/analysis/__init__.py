"""Static analysis of AJO trees: structure, dataflow, and feasibility.

The paper's NJS "checks the AJO for consistency" before incarnation and
the JPA's resource pages exist so the user cannot build a job the
destination system cannot run (section 5.4).  This package is that idea
taken seriously: a multi-pass analyzer over the whole job tree producing
typed :class:`~repro.analysis.diagnostics.Diagnostic` findings with
stable codes, run at all three tiers —

* the **JPA** lints before consigning (errors block, warnings inform),
* the **NJS** re-runs it on arrival and rejects with the primary
  diagnostic code carried over the wire ("never trust the client"),
* ``repro lint`` runs it from the command line for CI use.

Passes (each its own module):

1. :mod:`~repro.analysis.structure` — tree structure, ``AJO1xx``;
2. :mod:`~repro.analysis.dataflow` — Uspace dataflow and staging races,
   ``AJO2xx``;
3. :mod:`~repro.analysis.feasibility` — resource pages, software,
   routes, and the incarnation dry-run, ``AJO3xx``.
"""

from __future__ import annotations

from repro.ajo.job import AbstractJobObject
from repro.analysis.context import AnalysisContext
from repro.analysis.dataflow import dataflow_pass
from repro.analysis.diagnostics import (
    AnalysisError,
    AnalysisReport,
    Diagnostic,
    Severity,
)
from repro.analysis.feasibility import feasibility_pass
from repro.analysis.structure import structure_pass

__all__ = [
    "AnalysisContext",
    "AnalysisError",
    "AnalysisReport",
    "Diagnostic",
    "Severity",
    "analyze_ajo",
    "structure_pass",
    "dataflow_pass",
    "feasibility_pass",
]


def analyze_ajo(
    job: AbstractJobObject,
    context: AnalysisContext | None = None,
    *,
    require_user: bool = True,
) -> AnalysisReport:
    """Run all three passes over ``job``; deterministic for a given tree.

    ``context`` supplies the environment knowledge (resource pages,
    dialects, routes) of the calling tier; ``None`` means analyze with
    no environment, which still gives the structure and dataflow passes
    full strength.  ``require_user`` is False for forwarded sub-AJOs,
    whose identity arrives with the consignment rather than in the tree.
    """
    ctx = context if context is not None else AnalysisContext()
    diags = structure_pass(job, require_user=require_user)
    diags.extend(dataflow_pass(job, prestaged=ctx.prestaged))
    diags.extend(feasibility_pass(job, ctx))
    return AnalysisReport(
        job_id=job.id, job_name=job.name, diagnostics=tuple(diags)
    )
