"""Pass 2 — Uspace dataflow (``AJO2xx``).

Abstract interpretation of each job group's DAG over the files its
tasks produce and consume in the Uspace.  The producer model mirrors the
NJS runtime exactly (``supervisor._run_execute``): imports write their
destination, compiles their object files, links their output; a
dependency edge's ``files`` are materialized by its predecessor; an
execute task directly preceding an export/transfer implicitly produces
that file task's source; and sink execute tasks materialize what the
group owes its parent.  Anything the runtime would fail to find — or
find only by racing — is reported here instead of as a batch-tier
failure hours later.

Ordering uses the transitive closure of the dependency DAG (built on
:func:`~repro.ajo.dag.topological_order`): a producer counts only if it
is *ordered before* the reader; two writers of the same path with no
ordering between them are a write-write race.
"""

from __future__ import annotations

from repro.ajo.dag import predecessors_map, topological_order
from repro.ajo.errors import DependencyCycleError
from repro.ajo.job import AbstractJobObject
from repro.ajo.tasks import (
    CompileTask,
    ExecuteTask,
    ExportTask,
    ImportTask,
    LinkTask,
    TransferTask,
    UserTask,
)
from repro.analysis.diagnostics import Diagnostic, Severity

__all__ = [
    "dataflow_pass",
    "CODE_NEVER_PRODUCED",
    "CODE_READ_RACE",
    "CODE_WRITE_RACE",
    "CODE_DEAD_IMPORT",
    "CODE_UNSTAGED_INPUT",
    "CODE_UNPRODUCIBLE_PROMISE",
]

CODE_NEVER_PRODUCED = "AJO201"
CODE_READ_RACE = "AJO202"
CODE_WRITE_RACE = "AJO203"
CODE_DEAD_IMPORT = "AJO204"
CODE_UNSTAGED_INPUT = "AJO205"
CODE_UNPRODUCIBLE_PROMISE = "AJO206"


def dataflow_pass(
    job: AbstractJobObject, *, prestaged: frozenset[str] = frozenset()
) -> list[Diagnostic]:
    """Dataflow diagnostics for the whole tree.

    ``prestaged`` names Uspace paths guaranteed present before the root
    group starts (the forward-staged files of a forwarded sub-AJO).
    """
    diags: list[Diagnostic] = []
    _analyze_group(job, (job.id,), prestaged, frozenset(), diags)
    return diags


def _ancestor_closure(
    group: AbstractJobObject, order: list[str]
) -> dict[str, set[str]]:
    """child id -> every id ordered strictly before it (transitive)."""
    preds = predecessors_map(group)
    closure: dict[str, set[str]] = {}
    for cid in order:
        reach: set[str] = set()
        for p in preds[cid]:
            reach.add(p)
            reach |= closure[p]
        closure[cid] = reach
    return closure


def _execute_inputs(group: AbstractJobObject) -> list[tuple[str, str]]:
    """(task id, relative Uspace path) pairs an execute task reads.

    Absolute paths are assumed to name site-installed binaries outside
    the Uspace and are not tracked.
    """
    inputs: list[tuple[str, str]] = []
    for task in group.tasks():
        if isinstance(task, UserTask):
            paths = [task.executable]
        elif isinstance(task, CompileTask):
            paths = list(task.sources)
        elif isinstance(task, LinkTask):
            paths = list(task.objects)
        else:
            continue
        inputs.extend((task.id, p) for p in paths if not p.startswith("/"))
    return inputs


def _analyze_group(
    group: AbstractJobObject,
    path: tuple[str, ...],
    prestaged: frozenset[str],
    owed: frozenset[str],
    diags: list[Diagnostic],
) -> None:
    deps = group.dependencies
    children = {c.id: c for c in group.children}
    try:
        order = topological_order(group)
    except DependencyCycleError:
        order = []  # AJO104 already reported; ordering checks are moot.
    closure = _ancestor_closure(group, order) if order else None

    has_successor = {d.predecessor_id for d in deps}

    # -- the producer model (mirrors supervisor._run_execute) -----------------
    producers: dict[str, set[str]] = {}

    def produce(file_path: str, producer_id: str) -> None:
        producers.setdefault(file_path, set()).add(producer_id)

    for child in group.children:
        if isinstance(child, ImportTask):
            produce(child.destination_path, child.id)
        elif isinstance(child, CompileTask):
            for obj in child.object_files():
                produce(obj, child.id)
        elif isinstance(child, LinkTask):
            produce(child.output, child.id)
    for dep in deps:
        for f in dep.files:
            produce(f, dep.predecessor_id)
    for task in group.tasks():
        if isinstance(task, (ExportTask, TransferTask)):
            for dep in deps:
                if dep.successor_id != task.id:
                    continue
                pred = children.get(dep.predecessor_id)
                if isinstance(pred, ExecuteTask):
                    produce(task.source_path, pred.id)
    if owed:
        for task in group.tasks():
            if isinstance(task, ExecuteTask) and task.id not in has_successor:
                for f in owed:
                    produce(f, task.id)

    # -- everything the group consumes (for dead-import detection) ------------
    consumed: set[str] = set(owed)
    for dep in deps:
        consumed.update(dep.files)
    for task in group.tasks():
        if isinstance(task, (ExportTask, TransferTask)):
            consumed.add(task.source_path)
    exec_inputs = _execute_inputs(group)
    consumed.update(p for _, p in exec_inputs)

    # -- AJO201 / AJO202: file-task reads ------------------------------------
    for task in group.tasks():
        if not isinstance(task, (ExportTask, TransferTask)):
            continue
        src = task.source_path
        if src in prestaged:
            continue
        kind = "export" if isinstance(task, ExportTask) else "transfer"
        prods = producers.get(src, set()) - {task.id}
        if not prods:
            diags.append(
                Diagnostic(
                    CODE_NEVER_PRODUCED,
                    Severity.ERROR,
                    f"{kind} task {task.id} reads Uspace file {src!r} that "
                    "no import, predecessor, or dependency edge produces",
                    path + (task.id,),
                )
            )
        elif closure is not None and not (prods & closure[task.id]):
            diags.append(
                Diagnostic(
                    CODE_READ_RACE,
                    Severity.ERROR,
                    f"{kind} task {task.id} reads Uspace file {src!r} but no "
                    f"producer ({', '.join(sorted(prods))}) is ordered before "
                    "it — the read races the write",
                    path + (task.id,),
                )
            )

    # -- AJO203: write-write conflicts between DAG-concurrent producers -------
    if closure is not None:
        reported: set[tuple[str, str, str]] = set()
        for file_path in sorted(producers):
            writers = sorted(producers[file_path])
            for i, a in enumerate(writers):
                for b in writers[i + 1:]:
                    if a in closure.get(b, set()) or b in closure.get(a, set()):
                        continue
                    key = (file_path, a, b)
                    if key in reported:
                        continue
                    reported.add(key)
                    diags.append(
                        Diagnostic(
                            CODE_WRITE_RACE,
                            Severity.ERROR,
                            f"tasks {a} and {b} both produce Uspace file "
                            f"{file_path!r} with no ordering between them "
                            "(write-write conflict)",
                            path + (a,),
                        )
                    )

    # -- AJO204: dead imports --------------------------------------------------
    for task in group.tasks():
        if isinstance(task, ImportTask) and task.destination_path not in consumed:
            diags.append(
                Diagnostic(
                    CODE_DEAD_IMPORT,
                    Severity.WARNING,
                    f"import task {task.id} stages {task.destination_path!r} "
                    "but nothing in the group consumes it",
                    path + (task.id,),
                )
            )

    # -- AJO205: execute inputs with no ordered producer -----------------------
    for task_id, src in exec_inputs:
        if src in prestaged:
            continue
        prods = producers.get(src, set()) - {task_id}
        if not prods:
            diags.append(
                Diagnostic(
                    CODE_UNSTAGED_INPUT,
                    Severity.WARNING,
                    f"execute task {task_id} expects {src!r} in the Uspace "
                    "but nothing stages or produces it",
                    path + (task_id,),
                )
            )
        elif closure is not None and not (prods & closure[task_id]):
            diags.append(
                Diagnostic(
                    CODE_UNSTAGED_INPUT,
                    Severity.WARNING,
                    f"execute task {task_id} expects {src!r} but no producer "
                    f"({', '.join(sorted(prods))}) is ordered before it",
                    path + (task_id,),
                )
            )

    # -- AJO206: promises to the parent nothing here can keep ------------------
    for f in sorted(owed):
        if not producers.get(f):
            diags.append(
                Diagnostic(
                    CODE_UNPRODUCIBLE_PROMISE,
                    Severity.WARNING,
                    f"job group {group.id} owes {f!r} to its parent but "
                    "contains nothing that could produce it",
                    path,
                )
            )

    # -- recurse into sub-groups with their staged/owed file sets --------------
    for sub in group.sub_jobs():
        sub_prestaged = frozenset(
            f for d in deps if d.successor_id == sub.id for f in d.files
        )
        sub_owed = frozenset(
            f for d in deps if d.predecessor_id == sub.id for f in d.files
        )
        _analyze_group(sub, path + (sub.id,), sub_prestaged, sub_owed, diags)
