"""The span: one timed operation inside a trace."""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Span"]


@dataclass(slots=True)
class Span:
    """One named, timed operation attributed to a tier.

    Spans are created and finished through a
    :class:`~repro.observability.tracer.Tracer` (which owns the clock);
    the span itself is plain data.  ``parent_id`` links spans into the
    per-trace tree; a span without a parent is a root.
    """

    name: str
    trace_id: str
    span_id: str
    parent_id: str | None
    start: float
    #: Which tier did the work: ``user``, ``server``, or ``batch``.
    tier: str = ""
    end: float | None = None
    status: str = "ok"
    error: str = ""
    attributes: dict[str, object] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Seconds from start to end (0.0 while the span is open)."""
        if self.end is None:
            return 0.0
        return self.end - self.start

    def set(self, **attributes: object) -> "Span":
        """Attach attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def to_dict(self) -> dict:
        """JSON-ready representation (used by the trace export)."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "tier": self.tier,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "status": self.status,
            "error": self.error,
            "attributes": dict(self.attributes),
        }
