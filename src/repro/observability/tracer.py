"""The span recorder: starts, finishes, and indexes spans by trace."""

from __future__ import annotations

import contextlib
import typing
from itertools import count

from repro.observability.span import Span
from repro.observability.trace import Trace

__all__ = ["Tracer"]


class Tracer:
    """Records spans against a caller-supplied clock.

    Parents are always explicit — either a :class:`Span` or a span id —
    because simulation processes interleave arbitrarily and an ambient
    "current span" stack would attribute children to the wrong parent.
    Trace ids are plain strings; a UNICORE job id can be bound to its
    trace with :meth:`bind_job` so callers that only know the job id
    (the JMC, the ``repro trace`` CLI) can still find the trace.
    """

    def __init__(self, clock: typing.Callable[[], float]) -> None:
        self.clock = clock
        self._spans: dict[str, list[Span]] = {}
        self._jobs: dict[str, str] = {}
        self._trace_seq = count(1)
        self._span_seq = count(1)

    # -- traces --------------------------------------------------------------
    def new_trace(self, kind: str = "trace") -> str:
        """Mint a fresh trace id."""
        trace_id = f"{kind}-{next(self._trace_seq):04d}"
        self._spans[trace_id] = []
        return trace_id

    def bind_job(self, job_id: str, trace_id: str) -> None:
        """Alias a UNICORE job id to its trace."""
        self._jobs[job_id] = trace_id

    def trace_id_for_job(self, job_id: str) -> str | None:
        return self._jobs.get(job_id)

    def trace(self, trace_or_job_id: str) -> Trace:
        """The assembled trace; accepts a trace id or a bound job id."""
        trace_id = self._jobs.get(trace_or_job_id, trace_or_job_id)
        spans = self._spans.get(trace_id)
        if spans is None:
            raise KeyError(
                f"no trace {trace_or_job_id!r} (known jobs: "
                f"{sorted(self._jobs)})"
            )
        return Trace(trace_id, list(spans))

    def traces(self) -> list[str]:
        return sorted(self._spans)

    def clear(self) -> None:
        """Drop all recorded spans and job bindings (long-running sims)."""
        self._spans.clear()
        self._jobs.clear()

    # -- spans ---------------------------------------------------------------
    def start_span(
        self,
        name: str,
        trace_id: str,
        parent: "Span | str | None" = None,
        tier: str = "",
        **attributes: object,
    ) -> Span:
        """Open a span at the current clock time."""
        parent_id = parent.span_id if isinstance(parent, Span) else parent
        span = Span(
            name=name,
            trace_id=trace_id,
            span_id=f"s{next(self._span_seq):05d}",
            parent_id=parent_id or None,
            start=self.clock(),
            tier=tier,
            attributes=dict(attributes),
        )
        self._spans.setdefault(trace_id, []).append(span)
        return span

    def end_span(
        self, span: Span, error: "BaseException | str | None" = None
    ) -> Span:
        """Close a span; ``error`` marks it failed."""
        if span.end is None:
            span.end = self.clock()
        if error is not None:
            span.status = "error"
            span.error = str(error) or type(error).__name__
        return span

    @contextlib.contextmanager
    def span(
        self,
        name: str,
        trace_id: str,
        parent: "Span | str | None" = None,
        tier: str = "",
        **attributes: object,
    ) -> typing.Iterator[Span]:
        """Context-manager form for straight-line (non-yielding) code."""
        span = self.start_span(name, trace_id, parent=parent, tier=tier, **attributes)
        try:
            yield span
        except BaseException as err:
            self.end_span(span, error=err)
            raise
        self.end_span(span)
