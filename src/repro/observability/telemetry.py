"""Per-simulation telemetry scoping.

Every :class:`~repro.simkernel.Simulator` gets its own tracer + metrics
bundle whose span clock reads that simulator's ``now``.  The map is a
``WeakKeyDictionary`` and the clock holds the simulator through a
weakref, so telemetry never keeps a finished simulation alive.  Code
with no simulator in reach (the VFS copy helpers, the consignment
codec when used standalone) shares one global wall-clock bundle.
"""

from __future__ import annotations

import time
import typing
import weakref
from dataclasses import dataclass, field

from repro.observability.metrics import MetricsRegistry
from repro.observability.tracer import Tracer

__all__ = ["Telemetry", "telemetry_for"]


@dataclass
class Telemetry:
    """One simulation's tracer and metrics, sharing a clock."""

    tracer: Tracer
    metrics: MetricsRegistry = field(default_factory=MetricsRegistry)

    def reset(self) -> None:
        """Drop recorded spans and metrics (keeps the clock)."""
        self.tracer.clear()
        self.metrics = MetricsRegistry()


def _sim_clock(sim: object) -> typing.Callable[[], float]:
    ref = weakref.ref(sim)

    def clock() -> float:
        alive = ref()
        return alive.now if alive is not None else 0.0

    return clock


_per_sim: "weakref.WeakKeyDictionary[object, Telemetry]" = (
    weakref.WeakKeyDictionary()
)
# The fallback bundle serves code running outside any simulation, where
# a wall clock is the only clock there is; sim-bound bundles get the
# deterministic _sim_clock above.  # devlint: ignore[RD101]
_global = Telemetry(tracer=Tracer(clock=time.monotonic))


def telemetry_for(sim: object = None) -> Telemetry:
    """The telemetry bundle for this simulator (wall-clock global if None)."""
    if sim is None:
        return _global
    bundle = _per_sim.get(sim)
    if bundle is None:
        bundle = Telemetry(tracer=Tracer(clock=_sim_clock(sim)))
        _per_sim[sim] = bundle
    return bundle
