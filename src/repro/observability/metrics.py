"""Typed counters and histograms with percentile summaries.

Pure Python on purpose: the observability layer must not drag numpy into
the hot path, and must keep working in stripped-down deployments.  The
percentile math matches numpy's default (linear interpolation between
closest ranks) so summaries agree with the benchmark tables.
"""

from __future__ import annotations

import typing

__all__ = ["Counter", "Histogram", "MetricsRegistry", "percentile"]


def percentile(values: typing.Sequence[float], p: float) -> float:
    """The ``p``-th percentile (0-100), linear interpolation between ranks."""
    if not values:
        return float("nan")
    if not 0.0 <= p <= 100.0:
        raise ValueError(f"percentile must be in [0, 100], got {p}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (p / 100.0) * (len(ordered) - 1)
    lo = int(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] * (1.0 - frac) + ordered[hi] * frac)


class Counter:
    """A monotonically increasing named count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: cannot decrease")
        self.value += amount

    def __repr__(self) -> str:
        return f"<Counter {self.name}={self.value:g}>"


class Histogram:
    """A named distribution of observed values."""

    __slots__ = ("name", "_values")

    def __init__(self, name: str) -> None:
        self.name = name
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        self._values.append(float(value))

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def total(self) -> float:
        return sum(self._values)

    @property
    def mean(self) -> float:
        return self.total / self.count if self._values else float("nan")

    @property
    def max(self) -> float:
        return max(self._values) if self._values else float("nan")

    def percentile(self, p: float) -> float:
        return percentile(self._values, p)

    def summary(self, ps: typing.Sequence[float] = (50, 90, 99)) -> dict[str, float]:
        out = {"count": float(self.count), "mean": self.mean, "max": self.max}
        for p in ps:
            out[f"p{p:g}"] = self.percentile(p)
        return out

    def __repr__(self) -> str:
        return f"<Histogram {self.name} n={self.count}>"


class MetricsRegistry:
    """Get-or-create registry of named counters and histograms."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        metric = self._counters.get(name)
        if metric is None:
            if name in self._histograms:
                raise ValueError(f"{name!r} is already a histogram")
            metric = self._counters[name] = Counter(name)
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self._histograms.get(name)
        if metric is None:
            if name in self._counters:
                raise ValueError(f"{name!r} is already a counter")
            metric = self._histograms[name] = Histogram(name)
        return metric

    def counter_value(self, name: str) -> float:
        """Current value of a counter (0.0 if never incremented)."""
        metric = self._counters.get(name)
        return metric.value if metric is not None else 0.0

    def snapshot(self) -> dict:
        """All metrics as plain data, for export and assertions."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "histograms": {
                name: h.summary() for name, h in sorted(self._histograms.items())
            },
        }
