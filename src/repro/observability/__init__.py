"""Observability: spans, traces, and metrics for the three-tier pipeline.

The paper's central quantitative claim is that UNICORE's middleware
overhead (gateway authentication, consignment, incarnation, staging)
stays small next to batch execution.  This package gives every layer a
uniform substrate to *prove* that on any run:

* :class:`Tracer` — a zero-dependency span recorder.  Spans carry
  explicit parents (no ambient context: simulation processes interleave,
  so implicit stacks would mis-nest), a tier label (``user`` /
  ``server`` / ``batch``), and timestamps from whatever clock the
  owning :class:`~repro.simkernel.Simulator` provides.
* :class:`MetricsRegistry` — typed counters and histograms with
  percentile summaries, pure Python.
* :class:`Trace` — the assembled per-job span tree as an AJO flows
  client → gateway → NJS → batch → outcome return, renderable as text
  (``repro trace``) or JSON (benchmark export).

Telemetry is scoped per simulation: :func:`telemetry_for` hands out one
:class:`Telemetry` bundle per :class:`~repro.simkernel.Simulator` (the
span clock is that simulator's clock), so concurrent simulations in one
process never mix, and sim-less helpers share a global wall-clock
default.
"""

from repro.observability.metrics import Counter, Histogram, MetricsRegistry
from repro.observability.span import Span
from repro.observability.telemetry import Telemetry, telemetry_for
from repro.observability.trace import Trace
from repro.observability.tracer import Tracer

__all__ = [
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Telemetry",
    "Trace",
    "Tracer",
    "telemetry_for",
]
