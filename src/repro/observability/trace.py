"""The assembled per-job trace: span tree, rendering, JSON export."""

from __future__ import annotations

import typing

from repro.observability.span import Span

__all__ = ["Trace"]


class Trace:
    """All spans of one trace, ordered causally (start time, then id).

    Spans whose parent is missing from the trace (e.g. the parent lived
    in another process that never recorded) are treated as roots, so a
    partial trace still renders.
    """

    def __init__(self, trace_id: str, spans: typing.Sequence[Span]) -> None:
        self.trace_id = trace_id
        self.spans = sorted(spans, key=lambda s: (s.start, s.span_id))

    def __len__(self) -> int:
        return len(self.spans)

    # -- queries -------------------------------------------------------------
    def find(self, name: str) -> list[Span]:
        """All spans with this name, in causal order."""
        return [s for s in self.spans if s.name == name]

    def first(self, name: str) -> Span | None:
        for span in self.spans:
            if span.name == name:
                return span
        return None

    def total(self, name: str) -> float:
        """Summed duration of every finished span with this name."""
        return sum(s.duration for s in self.spans if s.name == name)

    @property
    def names(self) -> set[str]:
        return {s.name for s in self.spans}

    @property
    def tiers(self) -> set[str]:
        return {s.tier for s in self.spans if s.tier}

    @property
    def duration(self) -> float:
        """Wall span of the whole trace (first start to last end)."""
        if not self.spans:
            return 0.0
        start = min(s.start for s in self.spans)
        end = max((s.end for s in self.spans if s.end is not None), default=start)
        return end - start

    # -- tree ----------------------------------------------------------------
    def tree(self) -> list[tuple[Span, list]]:
        """Nested ``(span, children)`` pairs for every root span."""
        ids = {s.span_id for s in self.spans}
        children: dict[str, list[Span]] = {}
        roots: list[Span] = []
        for span in self.spans:
            if span.parent_id and span.parent_id in ids:
                children.setdefault(span.parent_id, []).append(span)
            else:
                roots.append(span)

        def build(span: Span) -> tuple[Span, list]:
            return (span, [build(c) for c in children.get(span.span_id, [])])

        return [build(r) for r in roots]

    def render(self) -> str:
        """The ``repro trace`` display: an indented, timed span tree."""
        lines = [
            f"trace {self.trace_id}: {len(self.spans)} spans, "
            f"tiers {{{', '.join(sorted(self.tiers))}}}, "
            f"{self.duration:.3f}s end to end"
        ]

        def width(nodes: list, depth: int) -> int:
            w = 0
            for span, kids in nodes:
                w = max(w, depth * 2 + len(span.name), width(kids, depth + 1))
            return w

        tree = self.tree()
        name_w = max(width(tree, 0), 16)

        def emit(nodes: list, depth: int) -> None:
            for span, kids in nodes:
                label = " " * (depth * 2) + span.name
                status = "" if span.status == "ok" else f"  !{span.status}: {span.error}"
                open_mark = "" if span.finished else "  [open]"
                lines.append(
                    f"  {label:<{name_w}}  [{span.tier or '-':>6}]"
                    f"  t={span.start:>12.3f}  +{span.duration:>10.3f}s"
                    f"{open_mark}{status}"
                )
                emit(kids, depth + 1)

        emit(tree, 0)
        return "\n".join(lines)

    # -- export --------------------------------------------------------------
    def to_json(self) -> dict:
        """JSON-ready dict (the benchmark export format)."""
        return {
            "trace_id": self.trace_id,
            "span_count": len(self.spans),
            "tiers": sorted(self.tiers),
            "duration_s": self.duration,
            "spans": [s.to_dict() for s in self.spans],
        }

    def __repr__(self) -> str:
        return f"<Trace {self.trace_id} spans={len(self.spans)}>"
