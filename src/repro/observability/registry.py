"""The committed vocabulary of metric and span names.

A typo'd metric name never crashes — ``counter("njs.incarntions")``
just mints a fresh counter that sits at zero while every dashboard,
benchmark gate, and test assertion reads the real one.  This registry
makes the name set a reviewed artifact: ``repro devlint`` (RD3xx)
extracts every ``counter("…")``/``histogram("…")``/span-name literal in
``src/repro`` and diffs it against these sets, in both directions —
an unregistered emitter is a lint error, and so is a registered name
with no emitter left.

Adding an instrument is therefore a two-line change on purpose: the
emitting call site and the registry entry land in the same diff, where
a reviewer sees the name once, spelled twice.

``*_PREFIXES`` hold the dynamic families — names completed at runtime
from a bounded enum (``faults.{kind}``, ``resilience.breaker_{state}``)
— which are matched by prefix.
"""

from __future__ import annotations

__all__ = [
    "COUNTERS",
    "COUNTER_PREFIXES",
    "HISTOGRAMS",
    "SPANS",
    "SPAN_PREFIXES",
    "known_counter",
    "known_histogram",
    "known_span",
]

#: Every static counter name the tree may increment.
COUNTERS: frozenset[str] = frozenset({
    # client-side static analysis + JPA/JMC
    "analysis.errors",
    "analysis.jobs_rejected",
    "analysis.warnings",
    "client.stale_status_serves",
    "jmc.delta_views",
    # public facade
    "api.failover_attempts",
    "api.failovers",
    "api.wait_retries",
    # batch tier
    "batch.node_failures",
    "batch.outages",
    "batch.submitted",
    # federation broker
    "broker.matches",
    "broker.rejections",
    "broker.steals",
    # consignment codec
    "consignment.bytes",
    "consignment.files",
    # fault injection + resilience
    "faults.injected",
    "faults.skipped",
    "resilience.breaker_rejections",
    # gateway
    "gateway.auth_failures",
    "gateway.crashes",
    "gateway.dropped_frames",
    "gateway.dropped_requests",
    "gateway.push_aborts",
    "gateway.requests",
    "gateway.restarts",
    "gateway.subscribe_holds",
    # NJS
    "njs.advertisements",
    "njs.crashes",
    "njs.dropped_peer_messages",
    "njs.forwarded_groups",
    "njs.incarnation_cache.hits",
    "njs.incarnation_cache.misses",
    "njs.incarnations",
    "njs.index.hits",
    "njs.index.rebuilds",
    "njs.journal.records",
    "njs.journal_replays",
    "njs.reclaimed_jobs",
    "njs.rejected_paths",
    "njs.replay_failures",
    "njs.restarts",
    "njs.restored_runs",
    "njs.task_resubmissions",
    "njs.task_retry_waits",
    "njs.transfer_bytes",
    # protocol client
    "protocol.requests_sent",
    "protocol.retries",
    # persistence layer
    "storage.bytes",
    "storage.fsyncs",
    "storage.reads",
    "storage.writes",
    # data plane
    "stream.bad_frames",
    "stream.completed",
    "stream.resumes",
    "stream.wire_bytes",
    # virtual file system
    "vfs.bytes_copied",
    "vfs.files_copied",
})

#: Dynamic counter families, completed at runtime from bounded enums.
COUNTER_PREFIXES: frozenset[str] = frozenset({
    "broker.",              # broker.{matches,steals,rejections} readback
    "faults.",              # faults.{FaultKind}
    "resilience.breaker_",  # resilience.breaker_{state}
})

#: Every histogram name the tree may observe into.
HISTOGRAMS: frozenset[str] = frozenset({
    "batch.execute_seconds",
    "batch.wait_seconds",
    "broker.queue_depth",
    "gateway.auth_seconds",
    "incarnation.script_bytes",
})

#: Every static span name the tracer may start.
SPANS: frozenset[str] = frozenset({
    "batch.execute",
    "batch.wait",
    "broker.dispatch",
    "broker.steal",
    "client.applet_load",
    "client.handshake",
    "client.outcome",
    "client.resource_pages",
    "client.submit",
    "gateway.auth",
    "gateway.request",
    "njs.analyze",
    "njs.consign",
    "njs.export",
    "njs.forward",
    "njs.import",
    "njs.incarnate",
    "njs.job",
    "njs.replay",
    "njs.resubmit",
    "njs.stage",
    "njs.transfer",
    "protocol.attempt",
    "protocol.interact",
    "session.failover",
    "stream.send",
})

#: Dynamic span families.
SPAN_PREFIXES: frozenset[str] = frozenset({
    "fault.",  # fault.{FaultKind}
})


def known_counter(name: str) -> bool:
    """True when ``name`` is a registered counter or family member."""
    return name in COUNTERS or any(
        name.startswith(p) for p in COUNTER_PREFIXES
    )


def known_histogram(name: str) -> bool:
    return name in HISTOGRAMS


def known_span(name: str) -> bool:
    return name in SPANS or any(name.startswith(p) for p in SPAN_PREFIXES)
