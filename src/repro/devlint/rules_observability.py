"""RD3xx — observability registry consistency.

A typo'd metric name does not crash: ``metrics.counter("njs.incarntions")``
happily creates a fresh counter that stays at zero while dashboards and
benchmark gates silently read the real one.  The committed registry
(:mod:`repro.observability.registry`) is the vocabulary of counter,
histogram, and span names the instrumentation is allowed to emit; these
rules diff every literal in the tree against it:

* ``RD301`` — a counter name literal is not registered;
* ``RD302`` — a histogram name literal is not registered;
* ``RD303`` — a span name literal is not registered;
* ``RD304`` — a dynamic (f-string) metric name has no registered
  family prefix (``faults.`` covers ``faults.{kind}``);
* ``RD305`` — a registered name is emitted nowhere in the tree (a dead
  registry entry usually means the emitting site was renamed — the
  exact drift the registry exists to catch, seen from the other side).

Adding an instrument is a two-line change on purpose: the emitting call
plus the registry entry, reviewed together.
"""

from __future__ import annotations

import ast
import typing
from dataclasses import dataclass

from repro.devlint.diagnostics import DevDiagnostic, Severity
from repro.devlint.engine import Project, ProjectRule, SourceFile

__all__ = ["MetricUse", "extract_metric_uses", "observability_rules"]

#: Method names that take a counter name as their first argument.
_COUNTER_METHODS = frozenset({"counter", "counter_value", "_count"})
_HISTOGRAM_METHODS = frozenset({"histogram"})
_SPAN_METHODS = frozenset({"start_span", "span"})


@dataclass(frozen=True, slots=True)
class MetricUse:
    """One instrumentation site: where a name (or name family) is emitted."""

    kind: str  #: "counter" | "histogram" | "span"
    name: str  #: full name, or the literal prefix for dynamic uses
    line: int
    dynamic: bool = False  #: True for f-string names (``name`` is a prefix)


def _literal_prefix(node: ast.JoinedStr) -> str:
    """Leading constant text of an f-string (empty if it starts dynamic)."""
    if node.values and isinstance(node.values[0], ast.Constant):
        return str(node.values[0].value)
    return ""


def extract_metric_uses(f: SourceFile) -> list[MetricUse]:
    """Every counter/histogram/span name literal in one file."""
    uses: list[MetricUse] = []
    for node in ast.walk(f.tree):
        if not isinstance(node, ast.Call) or not node.args:
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        method = node.func.attr
        if method in _COUNTER_METHODS:
            kind = "counter"
        elif method in _HISTOGRAM_METHODS:
            kind = "histogram"
        elif method in _SPAN_METHODS:
            kind = "span"
        else:
            continue
        arg = node.args[0]
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            uses.append(MetricUse(kind=kind, name=arg.value, line=arg.lineno))
        elif isinstance(arg, ast.JoinedStr):
            uses.append(MetricUse(
                kind=kind, name=_literal_prefix(arg),
                line=arg.lineno, dynamic=True,
            ))
        # Bare variables are forwarders (e.g. a helper's parameter);
        # their call sites carry the literal and are checked there.
    return uses


def _registry() -> "typing.Any":
    from repro.observability import registry

    return registry


class MetricNameRule(ProjectRule):
    """RD301/RD302/RD303/RD304: every emitted name is registered."""

    code = "RD301"

    _UNKNOWN = {
        "counter": ("RD301", "counter"),
        "histogram": ("RD302", "histogram"),
        "span": ("RD303", "span"),
    }

    def check_project(
        self, project: Project
    ) -> typing.Iterator[DevDiagnostic]:
        reg = _registry()
        known = {
            "counter": reg.COUNTERS,
            "histogram": reg.HISTOGRAMS,
            "span": reg.SPANS,
        }
        families = {
            "counter": reg.COUNTER_PREFIXES,
            "histogram": frozenset(),
            "span": reg.SPAN_PREFIXES,
        }
        for f in project.files:
            if f.rel.startswith("src/repro/observability/"):
                continue  # the instrument layer itself names nothing
            for use in extract_metric_uses(f):
                if use.dynamic:
                    if not any(
                        use.name.startswith(p) for p in families[use.kind]
                    ):
                        yield DevDiagnostic(
                            code="RD304", severity=Severity.ERROR,
                            message=(
                                f"dynamic {use.kind} name {use.name!r}... "
                                "matches no registered family prefix in "
                                "repro.observability.registry"
                            ),
                            file=f.rel, line=use.line,
                        )
                    continue
                if use.name not in known[use.kind] and not any(
                    use.name.startswith(p) for p in families[use.kind]
                ):
                    rd, noun = self._UNKNOWN[use.kind]
                    yield DevDiagnostic(
                        code=rd, severity=Severity.ERROR,
                        message=(
                            f"{noun} name {use.name!r} is not in "
                            "repro.observability.registry — a typo here "
                            "creates a silent zero metric"
                        ),
                        file=f.rel, line=use.line,
                    )


class DeadRegistryEntryRule(ProjectRule):
    """RD305: registered names must be emitted somewhere."""

    code = "RD305"

    def check_project(
        self, project: Project
    ) -> typing.Iterator[DevDiagnostic]:
        reg = _registry()
        registry_file = "src/repro/observability/registry.py"
        emitted: dict[str, set[str]] = {
            "counter": set(), "histogram": set(), "span": set(),
        }
        prefixes: dict[str, set[str]] = {
            "counter": set(), "histogram": set(), "span": set(),
        }
        for f in project.files:
            for use in extract_metric_uses(f):
                if use.dynamic:
                    prefixes[use.kind].add(use.name)
                else:
                    emitted[use.kind].add(use.name)
        spans = [
            ("counter", reg.COUNTERS, emitted["counter"]),
            ("histogram", reg.HISTOGRAMS, emitted["histogram"]),
            ("span", reg.SPANS, emitted["span"]),
        ]
        for kind, registered, seen in spans:
            for name in sorted(registered - seen):
                yield DevDiagnostic(
                    code="RD305", severity=Severity.ERROR,
                    message=(
                        f"registered {kind} name {name!r} is emitted nowhere "
                        "in src/repro — remove it or restore the emitter"
                    ),
                    file=registry_file, line=0,
                )
        fams = [
            ("counter", reg.COUNTER_PREFIXES, prefixes["counter"]),
            ("span", reg.SPAN_PREFIXES, prefixes["span"]),
        ]
        for kind, registered, seen in fams:
            for prefix in sorted(registered):
                if not any(s.startswith(prefix) for s in seen):
                    yield DevDiagnostic(
                        code="RD305", severity=Severity.ERROR,
                        message=(
                            f"registered {kind} family {prefix!r} has no "
                            "dynamic emitter in src/repro"
                        ),
                        file=registry_file, line=0,
                    )


def observability_rules() -> list[ProjectRule]:
    return [MetricNameRule(), DeadRegistryEntryRule()]
