"""RD1xx — determinism rules.

The reproduction's crown-jewel invariant is byte-identical replay: the
same seed must produce the same events, snapshots (PR 8) must thaw
byte-identically, and seeded fault plans (PR 2) must perturb nothing
they did not perturb last run.  Everything here guards the ways that
invariant silently rots:

* ``RD101`` — wall-clock reads (``time.time``/``time.monotonic``/
  ``datetime.now``): simulation code must read ``sim.now``.
* ``RD102`` — unseeded randomness (module-level ``random.*``,
  ``random.Random()``/``default_rng()`` with no seed): every RNG must
  derive from the simulation seed (:mod:`repro.simkernel.rng`).
* ``RD103`` — OS entropy (``os.urandom``, ``uuid.uuid1/uuid4``,
  ``secrets.*``): never reproducible, never allowed.
* ``RD104`` — unsorted directory listings (``os.listdir``/``scandir``/
  ``glob``/``iterdir``): filesystem order is platform noise; wrap the
  call in ``sorted(...)``.
* ``RD105`` — iterating a ``set``/``frozenset`` expression in a
  ``for``/comprehension: set order is salted per process and escapes
  into observable event order; iterate ``sorted(...)`` instead.
* ``RD106`` — ``id()``-based ordering (``key=id`` or ``id()`` inside
  an ordering comparison): CPython addresses are not stable across
  runs.

Allowlisted by path: the asyncio transport (real sockets need real
clocks for stall guards) and the security layer's seeded-RNG number
theory (it *consumes* callers' seeded ``random.Random`` instances and
may legitimately name the module in annotations).  Deliberate
exceptions elsewhere carry an inline ``# devlint: ignore[RD1xx]`` with
the justification in view.
"""

from __future__ import annotations

import ast
import typing

from repro.devlint.engine import FileRule, SourceFile

__all__ = ["determinism_rules"]

#: Paths where wall clocks and OS randomness are the design, not a leak.
_REALTIME_PATHS = (
    "src/repro/net/aio_transport.py",
    "benchmarks/",
)
_SEEDED_RNG_PATHS = (
    "src/repro/security/",
)


def _dotted(node: ast.AST) -> str:
    """Best-effort dotted name of a call target (``time.monotonic``)."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    return ".".join(reversed(parts))


def _calls(tree: ast.Module) -> typing.Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node


class WallClockRule(FileRule):
    """RD101: wall-clock reads in simulation code."""

    code = "RD101"
    allowlist = _REALTIME_PATHS

    _CLOCKS = frozenset({
        "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
        "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    })
    #: Suffixes catching ``datetime.datetime.now()`` and the
    #: ``from datetime import datetime; datetime.now()`` spelling alike.
    _DT_SUFFIXES = (
        "datetime.now", "datetime.utcnow", "datetime.today", "date.today",
    )

    def check(self, f: SourceFile) -> typing.Iterator[tuple[int, str]]:
        # Checking attribute *references* (not just calls) also catches
        # clock injection: ``Tracer(clock=time.monotonic)`` hands the
        # wall clock to a component without ever calling it here.  A
        # call site reports once, through its ``func`` attribute.
        for node in ast.walk(f.tree):
            if isinstance(node, ast.Attribute):
                name = _dotted(node)
                if name in self._CLOCKS:
                    yield node.lineno, (
                        f"wall-clock source {name} in simulation code; read "
                        "the simulator clock (sim.now) instead"
                    )
            elif isinstance(node, ast.Call):
                name = _dotted(node.func)
                if any(
                    name == s or name.endswith("." + s)
                    for s in self._DT_SUFFIXES
                ):
                    yield node.lineno, (
                        f"wall-clock call {name}() in simulation code; "
                        "timestamps must derive from the simulator clock"
                    )


class UnseededRandomRule(FileRule):
    """RD102: randomness not derived from the simulation seed."""

    code = "RD102"
    allowlist = _REALTIME_PATHS + _SEEDED_RNG_PATHS

    _MODULE_FNS = frozenset({
        "random.random", "random.randint", "random.randrange",
        "random.choice", "random.choices", "random.shuffle", "random.sample",
        "random.uniform", "random.gauss", "random.expovariate",
        "random.getrandbits", "random.seed", "random.betavariate",
    })

    def check(self, f: SourceFile) -> typing.Iterator[tuple[int, str]]:
        for call in _calls(f.tree):
            name = _dotted(call.func)
            if name in self._MODULE_FNS:
                yield call.lineno, (
                    f"{name}() draws from the process-global RNG; derive a "
                    "generator from the simulation seed "
                    "(repro.simkernel.rng.derive_rng)"
                )
            elif (
                name.endswith(("random.Random", "random.default_rng"))
                or name == "default_rng"
            ) and not call.args and not call.keywords:
                yield call.lineno, (
                    f"{name}() without a seed is entropy-seeded; pass a seed "
                    "derived from the simulation seed"
                )


class OSEntropyRule(FileRule):
    """RD103: operating-system entropy sources."""

    code = "RD103"
    allowlist = _REALTIME_PATHS

    _SOURCES = frozenset({
        "os.urandom", "uuid.uuid1", "uuid.uuid4",
        "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
        "secrets.randbits", "secrets.randbelow", "secrets.choice",
    })

    def check(self, f: SourceFile) -> typing.Iterator[tuple[int, str]]:
        for call in _calls(f.tree):
            name = _dotted(call.func)
            if name in self._SOURCES:
                yield call.lineno, (
                    f"{name}() reads OS entropy and is never reproducible; "
                    "derive identifiers/keys from seeded state"
                )


class UnsortedListingRule(FileRule):
    """RD104: directory listings consumed in filesystem order."""

    code = "RD104"
    allowlist = _REALTIME_PATHS

    _LISTINGS = frozenset({
        "os.listdir", "os.scandir", "glob.glob", "glob.iglob",
    })
    _METHODS = frozenset({"iterdir", "rglob"})

    def _is_listing(self, call: ast.Call) -> str | None:
        name = _dotted(call.func)
        if name in self._LISTINGS:
            return name
        if (
            isinstance(call.func, ast.Attribute)
            and call.func.attr in self._METHODS
        ):
            return call.func.attr
        return None

    def check(self, f: SourceFile) -> typing.Iterator[tuple[int, str]]:
        ordered: set[ast.Call] = set()
        for call in _calls(f.tree):
            if isinstance(call.func, ast.Name) and call.func.id == "sorted":
                for arg in call.args:
                    if isinstance(arg, ast.Call):
                        ordered.add(arg)
        for call in _calls(f.tree):
            if call in ordered:
                continue
            name = self._is_listing(call)
            if name is not None:
                yield call.lineno, (
                    f"{name}() yields entries in filesystem order, which "
                    "varies by platform; wrap the call in sorted(...)"
                )


class SetIterationRule(FileRule):
    """RD105: set iteration order escaping into observable order."""

    code = "RD105"

    _SET_CALLS = frozenset({"set", "frozenset"})

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = _dotted(node.func)
            if name in self._SET_CALLS:
                return True
            # Set algebra on calls: set(a) | set(b) handled below.
        if isinstance(node, ast.BinOp) and isinstance(
            node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
        ):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def check(self, f: SourceFile) -> typing.Iterator[tuple[int, str]]:
        iterated: list[ast.expr] = []
        for node in ast.walk(f.tree):
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterated.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                iterated.extend(gen.iter for gen in node.generators)
        for expr in iterated:
            if self._is_set_expr(expr):
                yield expr.lineno, (
                    "iterating a set expression leaks the per-process hash "
                    "order into event order; iterate sorted(...) instead"
                )


class IdOrderingRule(FileRule):
    """RD106: object identity used as an ordering key."""

    code = "RD106"

    _ORDERING_FNS = frozenset({"sorted", "min", "max"})

    def check(self, f: SourceFile) -> typing.Iterator[tuple[int, str]]:
        for call in _calls(f.tree):
            name = _dotted(call.func)
            is_ordering = (
                name in self._ORDERING_FNS
                or (isinstance(call.func, ast.Attribute)
                    and call.func.attr == "sort")
            )
            if not is_ordering:
                continue
            for kw in call.keywords:
                if (
                    kw.arg == "key"
                    and isinstance(kw.value, ast.Name)
                    and kw.value.id == "id"
                ):
                    yield call.lineno, (
                        "ordering by id() depends on allocation addresses, "
                        "which differ run to run; order by a stable field"
                    )
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.Compare):
                continue
            if not any(
                isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                for op in node.ops
            ):
                continue
            for side in [node.left, *node.comparators]:
                if (
                    isinstance(side, ast.Call)
                    and isinstance(side.func, ast.Name)
                    and side.func.id == "id"
                ):
                    yield node.lineno, (
                        "comparing id() values imposes an address-based "
                        "order; compare a stable field instead"
                    )


def determinism_rules() -> list[FileRule]:
    return [
        WallClockRule(), UnseededRandomRule(), OSEntropyRule(),
        UnsortedListingRule(), SetIterationRule(), IdOrderingRule(),
    ]
