"""Developer lint: static analysis of the codebase's own invariants.

PR 4 gave the *user's* artifact (the AJO) consign-time static analysis;
this package points the same discipline at the codebase itself.  The
reproduction's crown-jewel guarantees — byte-identical determinism,
stable error codes across the protocol edge, registry-consistent
counter/span names, one dispatch handler per request verb — were
enforced only by convention; ``repro devlint`` makes each of them a
machine-checked gate (see :mod:`repro.devlint.diagnostics` for the
RD1xx–RD4xx code families).

Usage::

    python -m repro devlint                 # human-readable, exit 1 on errors
    python -m repro devlint --json          # machine-readable, for CI
    python -m repro devlint --baseline .devlint-baseline.json

or programmatically::

    from repro.devlint import run_devlint
    report = run_devlint()
    assert report.ok, report.render()
"""

from repro.devlint.diagnostics import DevDiagnostic, DevReport, Severity
from repro.devlint.engine import (
    FileRule,
    Project,
    ProjectRule,
    SourceFile,
    default_rules,
    discover_project,
    load_baseline,
    run_devlint,
    write_baseline,
)

__all__ = [
    "DevDiagnostic",
    "DevReport",
    "FileRule",
    "Project",
    "ProjectRule",
    "Severity",
    "SourceFile",
    "default_rules",
    "discover_project",
    "load_baseline",
    "run_devlint",
    "write_baseline",
]
