"""The devlint engine: file discovery, rule driving, suppression.

Two rule shapes exist, matching the two shapes of invariants:

* :class:`FileRule` — runs per source file against its AST, for local
  properties (a wall-clock call, an iteration over a ``set``);
* :class:`ProjectRule` — runs once over the whole :class:`Project`,
  for cross-file registries (error codes vs raise sites, metric names
  vs the committed registry, request verbs vs dispatch handlers).

Suppression is two-tier, mirroring how ``ruff``/``mypy`` earn trust:

* inline pragmas — ``# devlint: ignore[RD101]`` on the offending line
  (or alone on the line above) silences named codes with the reason
  visible in the diff;
* a baseline file — a committed JSON list of fingerprints for findings
  accepted as legacy debt, so the gate can turn on hard while the debt
  burns down.  Fingerprints exclude line numbers, so a baseline entry
  survives unrelated edits.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
import typing
from dataclasses import dataclass, field
from pathlib import Path

from repro.devlint.diagnostics import DevDiagnostic, DevReport, Severity

__all__ = [
    "FileRule",
    "Project",
    "ProjectRule",
    "SourceFile",
    "default_rules",
    "discover_project",
    "load_baseline",
    "run_devlint",
    "write_baseline",
]

#: Matches ``# devlint: ignore`` and ``# devlint: ignore[RD101, RD203]``.
_PRAGMA = re.compile(
    r"#\s*devlint:\s*ignore(?:\[(?P<codes>[A-Z0-9,\s]+)\])?"
)


@dataclass
class SourceFile:
    """One parsed source file plus its inline suppressions."""

    path: Path
    #: Repo-relative POSIX path (``src/repro/net/wire.py``).
    rel: str
    source: str
    tree: ast.Module
    #: line -> codes silenced there (``None`` = every code).
    ignores: dict[int, set[str] | None] = field(default_factory=dict)

    def suppressed(self, line: int, code: str) -> bool:
        codes = self.ignores.get(line, ())
        return codes is None or code in typing.cast("set[str]", codes)


def _parse_pragmas(source: str) -> dict[int, set[str] | None]:
    """Inline suppressions by line, via the token stream (not regex-on-
    strings, so a pragma inside a string literal never counts)."""
    ignores: dict[int, set[str] | None] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except tokenize.TokenizeError:  # pragma: no cover - ast.parse catches first
        return ignores
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(tok.string)
        if match is None:
            continue
        raw = match.group("codes")
        codes = (
            None if raw is None
            else {c.strip() for c in raw.split(",") if c.strip()}
        )
        line = tok.start[0]
        # A comment alone on its line shields the *next* line too, so
        # pragmas survive formatters that refuse long lines.
        targets = [line]
        if tok.line.strip().startswith("#"):
            targets.append(line + 1)
        for target in targets:
            existing = ignores.get(target, set())
            if codes is None or existing is None:
                ignores[target] = None
            else:
                ignores[target] = typing.cast("set[str]", existing) | codes
    return ignores


@dataclass
class Project:
    """Everything a rule may look at: the file set plus repo documents."""

    root: Path
    files: list[SourceFile]
    readme: str = ""

    def file(self, rel: str) -> SourceFile | None:
        for f in self.files:
            if f.rel == rel:
                return f
        return None


class FileRule:
    """A per-file AST rule.  Subclasses set the code and implement
    :meth:`check`, yielding ``(line, message)`` pairs."""

    code: str = "RD000"
    severity: Severity = Severity.ERROR
    #: Repo-relative path prefixes where this rule never fires (paths
    #: whose non-determinism or divergence is the design, e.g. the
    #: wall-clock asyncio transport).
    allowlist: tuple[str, ...] = ()

    def check(self, f: SourceFile) -> typing.Iterator[tuple[int, str]]:
        raise NotImplementedError

    def run(self, f: SourceFile) -> typing.Iterator[DevDiagnostic]:
        if any(f.rel.startswith(prefix) for prefix in self.allowlist):
            return
        for line, message in self.check(f):
            yield DevDiagnostic(
                code=self.code, severity=self.severity,
                message=message, file=f.rel, line=line,
            )


class ProjectRule:
    """A whole-project rule.  Subclasses implement :meth:`check_project`,
    yielding finished diagnostics (they know their own spans)."""

    code: str = "RD000"

    def check_project(self, project: Project) -> typing.Iterator[DevDiagnostic]:
        raise NotImplementedError


def find_repo_root(start: Path | None = None) -> Path:
    """Walk up from ``start`` (default: this package) to the repo root.

    The root is the directory holding ``src/repro`` — devlint analyzes
    the codebase itself, so it must run from a source checkout.
    """
    here = (start or Path(__file__)).resolve()
    for candidate in [here, *here.parents]:
        if (candidate / "src" / "repro").is_dir():
            return candidate
    raise FileNotFoundError(
        "cannot locate the repository root (no src/repro above "
        f"{here}); devlint needs a source checkout"
    )


def discover_project(root: Path | None = None) -> Project:
    """Parse every linted source file under ``root``.

    The linted set is ``src/repro`` — the shipped package whose
    invariants the rules guard.  Tests and benchmarks are free to use
    wall clocks and ad-hoc names (they *measure* the wall clock).
    """
    base = find_repo_root(root) if root is None else Path(root).resolve()
    package = base / "src" / "repro"
    if not package.is_dir():
        raise FileNotFoundError(f"{package} is not a directory")
    files: list[SourceFile] = []
    for path in sorted(package.rglob("*.py")):
        if "__pycache__" in path.parts:
            continue
        source = path.read_text(encoding="utf-8")
        files.append(SourceFile(
            path=path,
            rel=path.relative_to(base).as_posix(),
            source=source,
            tree=ast.parse(source, filename=str(path)),
            ignores=_parse_pragmas(source),
        ))
    readme = base / "README.md"
    return Project(
        root=base,
        files=files,
        readme=readme.read_text(encoding="utf-8") if readme.exists() else "",
    )


def default_rules() -> "list[FileRule | ProjectRule]":
    """All four rule packs, in code order."""
    from repro.devlint.rules_determinism import determinism_rules
    from repro.devlint.rules_observability import observability_rules
    from repro.devlint.rules_protocol import protocol_rules
    from repro.devlint.rules_registry import registry_rules

    return [
        *determinism_rules(),
        *registry_rules(),
        *observability_rules(),
        *protocol_rules(),
    ]


def load_baseline(path: Path) -> set[str]:
    """Read a baseline suppression file; returns its fingerprints."""
    with open(path, encoding="utf-8") as handle:
        data = json.load(handle)
    if (
        not isinstance(data, dict)
        or data.get("version") != 1
        or not isinstance(data.get("suppressions"), list)
    ):
        raise ValueError(
            f"{path}: not a devlint baseline "
            '(expected {"version": 1, "suppressions": [...]})'
        )
    return {str(item) for item in data["suppressions"]}


def write_baseline(path: Path, report: DevReport) -> int:
    """Write every current finding's fingerprint as the new baseline."""
    fingerprints = sorted({d.fingerprint for d in report.diagnostics})
    payload = {"version": 1, "suppressions": fingerprints}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2)
        handle.write("\n")
    return len(fingerprints)


def run_devlint(
    root: Path | None = None,
    rules: "typing.Sequence[FileRule | ProjectRule] | None" = None,
    baseline: set[str] | None = None,
    project: Project | None = None,
) -> DevReport:
    """Lint the codebase; returns the ordered, suppression-filtered report."""
    if project is None:
        project = discover_project(root)
    active = list(default_rules() if rules is None else rules)

    findings: list[DevDiagnostic] = []
    for rule in active:
        if isinstance(rule, FileRule):
            for f in project.files:
                findings.extend(rule.run(f))
        else:
            findings.extend(rule.check_project(project))

    kept: list[DevDiagnostic] = []
    suppressed = 0
    baseline = baseline or set()
    by_rel = {f.rel: f for f in project.files}
    for diag in findings:
        f = by_rel.get(diag.file)
        if f is not None and diag.line and f.suppressed(diag.line, diag.code):
            suppressed += 1
            continue
        if diag.fingerprint in baseline:
            suppressed += 1
            continue
        kept.append(diag)

    kept.sort(key=lambda d: (d.file, d.line, d.code, d.message))
    return DevReport(
        diagnostics=tuple(kept),
        suppressed=suppressed,
        files_scanned=len(project.files),
    )
