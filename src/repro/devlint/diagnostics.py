"""The typed finding model of the developer linter.

Mirrors :mod:`repro.analysis.diagnostics` — the consign-time analyzer's
``Diagnostic``/``AnalysisReport`` pair — but anchored in *source* space
(file + line) rather than action-id space, because here the artifact
under analysis is the codebase itself.  The severity vocabulary is
shared: :class:`~repro.analysis.diagnostics.Severity` is reused, and
``error`` findings fail ``repro devlint`` exactly as they block a
consignment.

Codes are stable and grouped by rule pack:

* ``RD1xx`` — determinism (wall clock, unseeded randomness, unordered
  iteration escaping into observable order);
* ``RD2xx`` — error-code registry consistency (``repro.errors``);
* ``RD3xx`` — observability registry consistency (counter/histogram/
  span names vs :mod:`repro.observability.registry`);
* ``RD4xx`` — protocol and shim consistency (request-verb dispatch,
  PEP 562 deprecation shims).

Like the AJO codes, RD codes are a contract (baselines and CI key on
them) and must never be renumbered.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.analysis.diagnostics import Severity

__all__ = ["DevDiagnostic", "DevReport", "Severity"]


@dataclass(frozen=True, slots=True)
class DevDiagnostic:
    """One developer-lint finding, located by file and line.

    ``file`` is the repo-relative POSIX path; ``line`` is 1-based
    (0 marks a whole-file or whole-project finding).  The
    :attr:`fingerprint` deliberately excludes the line number so a
    baseline entry survives unrelated edits above the finding.
    """

    code: str
    severity: Severity
    message: str
    file: str
    line: int = 0

    @property
    def fingerprint(self) -> str:
        """Stable identity for baseline suppression (line-independent)."""
        return f"{self.code}|{self.file}|{self.message}"

    def render(self) -> str:
        where = f"{self.file}:{self.line}" if self.line else self.file
        return f"{where}: {self.code} {self.severity.value}: {self.message}"

    def to_dict(self) -> dict[str, typing.Any]:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "file": self.file,
            "line": self.line,
        }


@dataclass(frozen=True, slots=True)
class DevReport:
    """All findings of one ``run_devlint`` pass, in deterministic order."""

    diagnostics: tuple[DevDiagnostic, ...]
    #: Findings dropped by inline pragmas or the baseline file (still
    #: counted, for honesty).
    suppressed: int = 0
    #: Files scanned, so "0 findings" is distinguishable from "0 files".
    files_scanned: int = 0

    @property
    def errors(self) -> tuple[DevDiagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity is Severity.ERROR)

    @property
    def warnings(self) -> tuple[DevDiagnostic, ...]:
        return tuple(
            d for d in self.diagnostics if d.severity is Severity.WARNING
        )

    @property
    def ok(self) -> bool:
        """True when nothing fails the gate (warnings/notes allowed)."""
        return not self.errors

    def summary(self) -> str:
        suppressed = (
            f", {self.suppressed} suppressed" if self.suppressed else ""
        )
        return (
            f"devlint: {len(self.errors)} error(s), "
            f"{len(self.warnings)} warning(s) across "
            f"{self.files_scanned} file(s){suppressed}"
        )

    def render(self) -> str:
        lines = [d.render() for d in self.diagnostics]
        lines.append(self.summary())
        return "\n".join(lines)

    def to_dict(self) -> dict[str, typing.Any]:
        return {
            "ok": self.ok,
            "errors": len(self.errors),
            "warnings": len(self.warnings),
            "suppressed": self.suppressed,
            "files_scanned": self.files_scanned,
            "diagnostics": [d.to_dict() for d in self.diagnostics],
        }
