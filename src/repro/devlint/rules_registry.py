"""RD2xx — error-code registry consistency.

The stable dotted ``code`` carried by every :class:`repro.errors.ReproError`
is a wire contract: the gateway serializes it into ``Reply.error_code``,
the client re-raises by it, fault tooling and baselines key on it.  The
registry (``repro.errors.error_code_registry``) is the single source of
truth; these rules keep every other appearance of a code consistent
with it:

* ``RD201`` — a ``ReproError`` subclass declares no ``code`` of its
  own, so it silently shares its parent's wire identity (classes that
  assign ``self.code`` per instance, like ``AnalysisError``, are
  recognized and exempt);
* ``RD202`` — two classes declare the same code (the registry builder
  refuses to build; this rule reports the collision as a span);
* ``RD203`` — a string literal used as a code (``code=...``/
  ``error_code=...`` keyword, or compared against ``.code``/
  ``.error_code``) resolves to no registered class and no analyzer
  code — the typo'd-constant class of bug;
* ``RD204`` — a code claimed by a README error table is not registered
  (documentation promising codes the middleware never raises);
* ``RD205`` — a registered code appears nowhere in the README error
  tables (the table is the user-facing contract; it must be complete).
"""

from __future__ import annotations

import ast
import inspect
import re
import typing
from pathlib import Path

from repro.devlint.diagnostics import DevDiagnostic, Severity
from repro.devlint.engine import Project, ProjectRule, SourceFile

__all__ = ["registry_rules", "readme_table_codes"]

#: A dotted error code: lowercase layer, dot, lowercase condition.
_CODE_SHAPE = re.compile(r"^[a-z_]+(\.[a-z_]+)+$")
#: Analyzer and devlint code families, valid wherever error codes are.
_FAMILY_SHAPE = re.compile(r"^(AJO[1-3]\d\d|RD[1-4]\d\d)$")


def _class_span(
    project: Project, cls: type
) -> tuple[str, int]:
    """(repo-relative file, line) of a class definition, best effort."""
    try:
        source_file = inspect.getsourcefile(cls)
        _, line = inspect.getsourcelines(cls)
    except (OSError, TypeError):
        return cls.__module__.replace(".", "/") + ".py", 0
    if source_file is None:
        return cls.__module__.replace(".", "/") + ".py", 0
    try:
        rel = Path(source_file).resolve().relative_to(project.root).as_posix()
    except ValueError:
        rel = Path(source_file).name
    return rel, line


def _instance_coded_classes(project: Project) -> set[str]:
    """Names of classes that assign ``self.code`` somewhere in a method.

    Such classes (e.g. ``AnalysisError``) pick their wire code per
    instance, which is a deliberate pattern — the class-level
    declaration requirement does not apply.
    """
    found: set[str] = set()
    for f in project.files:
        for node in ast.walk(f.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            for sub in ast.walk(node):
                if (
                    isinstance(sub, (ast.Assign, ast.AugAssign))
                ):
                    targets = (
                        sub.targets if isinstance(sub, ast.Assign)
                        else [sub.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and target.attr == "code"
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            found.add(node.name)
    return found


class ErrorClassDeclarationRule(ProjectRule):
    """RD201 + RD202: every class declares a code; no two share one."""

    code = "RD201"

    def check_project(
        self, project: Project
    ) -> typing.Iterator[DevDiagnostic]:
        from repro.errors import iter_error_classes

        instance_coded = _instance_coded_classes(project)
        by_code: dict[str, type] = {}
        for cls in iter_error_classes():
            own = cls.__dict__.get("code")
            file, line = _class_span(project, cls)
            if not isinstance(own, str):
                if cls.__name__ in instance_coded:
                    continue
                yield DevDiagnostic(
                    code="RD201", severity=Severity.ERROR,
                    message=(
                        f"{cls.__qualname__} declares no code of its own and "
                        "would share its parent's wire identity "
                        f"({cls.code!r}); declare a unique dotted code"
                    ),
                    file=file, line=line,
                )
                continue
            if not _CODE_SHAPE.match(own):
                yield DevDiagnostic(
                    code="RD201", severity=Severity.ERROR,
                    message=(
                        f"{cls.__qualname__} declares malformed code {own!r} "
                        "(expected lowercase dotted layer.condition)"
                    ),
                    file=file, line=line,
                )
                continue
            holder = by_code.get(own)
            if holder is not None and holder is not cls:
                yield DevDiagnostic(
                    code="RD202", severity=Severity.ERROR,
                    message=(
                        f"code {own!r} declared by both "
                        f"{holder.__qualname__} and {cls.__qualname__}; "
                        "codes must be unique"
                    ),
                    file=file, line=line,
                )
            by_code.setdefault(own, cls)


class CodeLiteralRule(ProjectRule):
    """RD203: every code literal at a use site resolves to the registry."""

    code = "RD203"

    _KEYWORDS = frozenset({"code", "error_code"})

    def _valid(self, literal: str, registered: frozenset[str]) -> bool:
        if literal == "" or literal in registered:
            return True
        return bool(_FAMILY_SHAPE.match(literal))

    def _check_file(
        self, f: SourceFile, registered: frozenset[str]
    ) -> typing.Iterator[DevDiagnostic]:
        sites: list[tuple[int, str]] = []
        for node in ast.walk(f.tree):
            if isinstance(node, ast.Call):
                for kw in node.keywords:
                    if (
                        kw.arg in self._KEYWORDS
                        and isinstance(kw.value, ast.Constant)
                        and isinstance(kw.value.value, str)
                    ):
                        sites.append((kw.value.lineno, kw.value.value))
            elif isinstance(node, ast.Compare):
                exprs = [node.left, *node.comparators]
                names = {
                    e.attr for e in exprs
                    if isinstance(e, ast.Attribute)
                } | {
                    e.id for e in exprs if isinstance(e, ast.Name)
                }
                if not (names & self._KEYWORDS):
                    continue
                for expr in exprs:
                    if (
                        isinstance(expr, ast.Constant)
                        and isinstance(expr.value, str)
                    ):
                        sites.append((expr.lineno, expr.value))
        for line, literal in sites:
            # Only literals shaped like codes are judged: `code=` keywords
            # also carry free-form identifiers elsewhere (HTTP-ish args).
            if not (_CODE_SHAPE.match(literal) or _FAMILY_SHAPE.match(literal)):
                continue
            if not self._valid(literal, registered):
                yield DevDiagnostic(
                    code="RD203", severity=Severity.ERROR,
                    message=(
                        f"code literal {literal!r} matches no registered "
                        "error class (repro.errors.ERROR_CODES) and no "
                        "analyzer code family"
                    ),
                    file=f.rel, line=line,
                )

    def check_project(
        self, project: Project
    ) -> typing.Iterator[DevDiagnostic]:
        from repro.errors import error_code_registry

        registered = frozenset(error_code_registry())
        for f in project.files:
            yield from self._check_file(f, registered)


def readme_table_codes(readme: str) -> list[tuple[int, str]]:
    """Backticked dotted codes claimed by README tables with a Code column.

    Returns ``(1-based line, code)`` pairs.  Only tables whose header
    row names a ``code`` column participate, so metric-name tables and
    module references never false-positive.
    """
    claimed: list[tuple[int, str]] = []
    in_code_table = False
    for lineno, line in enumerate(readme.splitlines(), start=1):
        stripped = line.strip()
        if not stripped.startswith("|"):
            in_code_table = False
            continue
        cells = [c.strip() for c in stripped.strip("|").split("|")]
        if all(set(c) <= {"-", ":", " "} for c in cells):
            continue  # separator row keeps the current table state
        header_like = any(c.lower() == "code" for c in cells)
        if not in_code_table and header_like:
            in_code_table = True
            continue
        if not in_code_table:
            continue
        for token in re.findall(r"`([^`]+)`", stripped):
            if _CODE_SHAPE.match(token):
                claimed.append((lineno, token))
    return claimed


class ReadmeCodeTableRule(ProjectRule):
    """RD204 + RD205: the README error tables match the registry."""

    code = "RD204"

    def check_project(
        self, project: Project
    ) -> typing.Iterator[DevDiagnostic]:
        from repro.errors import error_code_registry

        registered = dict(error_code_registry())
        claimed = readme_table_codes(project.readme)
        for lineno, token in claimed:
            if token not in registered:
                yield DevDiagnostic(
                    code="RD204", severity=Severity.ERROR,
                    message=(
                        f"README table claims code {token!r}, which no "
                        "registered error class declares"
                    ),
                    file="README.md", line=lineno,
                )
        documented = {token for _, token in claimed}
        for code in sorted(set(registered) - documented):
            yield DevDiagnostic(
                code="RD205", severity=Severity.ERROR,
                message=(
                    f"registered code {code!r} "
                    f"({registered[code].__qualname__}) is missing from the "
                    "README error tables"
                ),
                file="README.md", line=0,
            )


def registry_rules() -> list[ProjectRule]:
    return [
        ErrorClassDeclarationRule(), CodeLiteralRule(), ReadmeCodeTableRule(),
    ]
