"""RD4xx — protocol and shim consistency.

UNICORE's "seamless" model depends on every tier speaking the same
request vocabulary: a verb the client can send but no server tier
dispatches fails at runtime, in production, as an ``unhandled request
kind`` error.  These rules pin the vocabulary statically:

* ``RD401`` — a ``RequestKind`` verb has no dispatch handler in the
  gateway (``request.kind == RequestKind.X`` comparison);
* ``RD402`` — a verb has more than one dispatch handler (ambiguous —
  only the first branch ever runs);
* ``RD403`` — the gateway dispatches on a ``RequestKind`` attribute the
  protocol module does not define (a stale handler after a rename);
* ``RD404`` — a module hand-rolls a PEP 562 deprecation shim
  (module-level ``__getattr__`` emitting ``DeprecationWarning``)
  instead of using :func:`repro._compat.deprecated_module_attr`,
  losing the warn-once and caching semantics;
* ``RD405`` — a ``deprecated_module_attr`` call does not bind both
  ``__getattr__`` and ``__dir__`` (a shim invisible to ``dir()``).
"""

from __future__ import annotations

import ast
import typing

from repro.devlint.diagnostics import DevDiagnostic, Severity
from repro.devlint.engine import Project, ProjectRule

__all__ = ["protocol_rules", "request_verbs", "dispatch_sites"]

_MESSAGES_FILE = "src/repro/protocol/messages.py"
_GATEWAY_FILE = "src/repro/server/gateway.py"


def request_verbs(project: Project) -> dict[str, int]:
    """``RequestKind`` verb attribute -> definition line, from the AST."""
    f = project.file(_MESSAGES_FILE)
    if f is None:
        return {}
    verbs: dict[str, int] = {}
    for node in ast.walk(f.tree):
        if not (isinstance(node, ast.ClassDef) and node.name == "RequestKind"):
            continue
        for stmt in node.body:
            if (
                isinstance(stmt, ast.Assign)
                and len(stmt.targets) == 1
                and isinstance(stmt.targets[0], ast.Name)
                and isinstance(stmt.value, ast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                verbs[stmt.targets[0].id] = stmt.lineno
    return verbs


def dispatch_sites(project: Project) -> list[tuple[str, int]]:
    """``(verb attribute, line)`` for every gateway dispatch comparison.

    A ``request.kind == RequestKind.X`` comparison that is *not* a
    dispatch site (e.g. byte accounting on the firewall hop) opts out
    with an inline ``# devlint: ignore[RD402]`` pragma on its line.
    """
    f = project.file(_GATEWAY_FILE)
    if f is None:
        return []
    sites: list[tuple[str, int]] = []
    for node in ast.walk(f.tree):
        if not isinstance(node, ast.Compare):
            continue
        if not any(isinstance(op, ast.Eq) for op in node.ops):
            continue
        exprs = [node.left, *node.comparators]
        kinds = [
            e for e in exprs
            if isinstance(e, ast.Attribute) and e.attr == "kind"
        ]
        refs = [
            e for e in exprs
            if isinstance(e, ast.Attribute)
            and isinstance(e.value, ast.Name)
            and e.value.id == "RequestKind"
        ]
        if kinds and refs and not f.suppressed(node.lineno, "RD402"):
            sites.append((refs[0].attr, node.lineno))
    return sites


class VerbDispatchRule(ProjectRule):
    """RD401/RD402/RD403: verbs and gateway handlers match one-to-one."""

    code = "RD401"

    def check_project(
        self, project: Project
    ) -> typing.Iterator[DevDiagnostic]:
        verbs = request_verbs(project)
        if not verbs:
            return
        sites = dispatch_sites(project)
        handled: dict[str, list[int]] = {}
        for attr, line in sites:
            handled.setdefault(attr, []).append(line)
        for attr, line in sorted(verbs.items()):
            if attr == "ALL":
                continue
            lines = handled.get(attr, [])
            if not lines:
                yield DevDiagnostic(
                    code="RD401", severity=Severity.ERROR,
                    message=(
                        f"request verb RequestKind.{attr} has no dispatch "
                        "handler in the gateway — clients can send it, no "
                        "tier answers it"
                    ),
                    file=_MESSAGES_FILE, line=line,
                )
            elif len(lines) > 1:
                yield DevDiagnostic(
                    code="RD402", severity=Severity.ERROR,
                    message=(
                        f"request verb RequestKind.{attr} is dispatched "
                        f"{len(lines)} times in the gateway (lines "
                        f"{', '.join(map(str, lines))}); only the first "
                        "branch ever runs"
                    ),
                    file=_GATEWAY_FILE, line=lines[1],
                )
        for attr, lines in sorted(handled.items()):
            if attr not in verbs:
                yield DevDiagnostic(
                    code="RD403", severity=Severity.ERROR,
                    message=(
                        f"gateway dispatches on RequestKind.{attr}, which "
                        "protocol/messages.py does not define"
                    ),
                    file=_GATEWAY_FILE, line=lines[0],
                )


class ShimConventionRule(ProjectRule):
    """RD404/RD405: deprecation shims use the shared machinery, fully."""

    code = "RD404"

    _COMPAT_FILE = "src/repro/_compat.py"

    def check_project(
        self, project: Project
    ) -> typing.Iterator[DevDiagnostic]:
        for f in project.files:
            if f.rel == self._COMPAT_FILE:
                continue
            mentions_deprecation = "DeprecationWarning" in f.source
            for node in f.tree.body:
                if (
                    isinstance(node, ast.FunctionDef)
                    and node.name == "__getattr__"
                    and mentions_deprecation
                ):
                    yield DevDiagnostic(
                        code="RD404", severity=Severity.ERROR,
                        message=(
                            "hand-rolled PEP 562 deprecation shim; use "
                            "repro._compat.deprecated_module_attr for "
                            "warn-once and attribute caching"
                        ),
                        file=f.rel, line=node.lineno,
                    )
            for node in ast.walk(f.tree):
                if not (
                    isinstance(node, ast.Call)
                    and isinstance(
                        node.func, (ast.Name, ast.Attribute)
                    )
                ):
                    continue
                name = (
                    node.func.id if isinstance(node.func, ast.Name)
                    else node.func.attr
                )
                if name != "deprecated_module_attr":
                    continue
                parent = _assignment_of(f.tree, node)
                ok = (
                    parent is not None
                    and len(parent.targets) == 1
                    and isinstance(parent.targets[0], ast.Tuple)
                    and [
                        e.id for e in parent.targets[0].elts
                        if isinstance(e, ast.Name)
                    ] == ["__getattr__", "__dir__"]
                )
                if not ok:
                    yield DevDiagnostic(
                        code="RD405", severity=Severity.ERROR,
                        message=(
                            "deprecated_module_attr must bind both module "
                            "hooks: `__getattr__, __dir__ = "
                            "deprecated_module_attr(...)`"
                        ),
                        file=f.rel, line=node.lineno,
                    )


def _assignment_of(tree: ast.Module, call: ast.Call) -> ast.Assign | None:
    """The ``Assign`` statement whose value is exactly ``call``, if any."""
    for node in ast.walk(tree):
        if isinstance(node, ast.Assign) and node.value is call:
            return node
    return None


def protocol_rules() -> list[ProjectRule]:
    return [VerbDispatchRule(), ShimConventionRule()]
