"""The storage value codec: one canonical byte encoding for every backend.

Backends must agree *exactly* on what survives a round trip, or flipping
``REPRO_STORAGE`` would change simulation behavior.  So both backends
funnel every stored value through this module: Python values are first
normalized to a JSON-safe "plain" form (``bytes`` become a tagged
base64 dict, tuples become lists, dict keys become strings) and then
serialized as canonical JSON bytes.  The in-memory backend pays the
same round trip as SQLite on purpose — parity over speed.

The existing :mod:`repro.resources.asn1` codec is *not* reused here: it
deliberately has no ``bytes`` type (resource pages are numbers and
names), while journal records are mostly AJO byte strings.
"""

from __future__ import annotations

import base64
import json
import typing

__all__ = ["to_plain", "from_plain", "encode_value", "decode_value"]

#: Tag key marking a base64-encoded byte string in plain form.  The
#: leading NUL keeps it out of the space of ordinary dict keys.
_BYTES_TAG = "\x00b64"


def to_plain(value: object) -> object:
    """Normalize ``value`` into JSON-safe plain data (pure, recursive)."""
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (bytes, bytearray)):
        return {_BYTES_TAG: base64.b64encode(bytes(value)).decode("ascii")}
    if isinstance(value, (list, tuple)):
        return [to_plain(item) for item in value]
    if isinstance(value, dict):
        return {str(key): to_plain(item) for key, item in value.items()}
    raise TypeError(
        f"storage values must be plain data (None/bool/int/float/str/"
        f"bytes/list/tuple/dict); got {type(value).__name__}"
    )


def from_plain(value: object) -> object:
    """Invert :func:`to_plain` (lists stay lists; tuples do not return)."""
    if isinstance(value, list):
        return [from_plain(item) for item in value]
    if isinstance(value, dict):
        if set(value) == {_BYTES_TAG}:
            return base64.b64decode(typing.cast(str, value[_BYTES_TAG]))
        return {key: from_plain(item) for key, item in value.items()}
    return value


def encode_value(value: object) -> bytes:
    """Canonical byte encoding of a value (sorted keys, no whitespace)."""
    return json.dumps(
        to_plain(value), sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def decode_value(data: bytes) -> object:
    return from_plain(json.loads(data.decode("utf-8")))
