"""Durable per-job outcome records: what survives when memory does not.

A finished job's observable surface — its status rollup, the encoded
outcome tree (stdout/stderr included), and the Uspace files the user may
still fetch — is written here in one batch with the journal's ``done``
record.  A cold-started NJS rebuilds *finished* jobs from this table as
:class:`~repro.server.njs.restored.RestoredRun` views, so completion
survives a full-site restart exactly as section 4.2's "single stateful
tier" demands, and disposal deletes the record just like it destroys
the Uspaces.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.storage.backend import StorageBackend

__all__ = ["OutcomeRecord", "OutcomeStore"]


@dataclass(frozen=True, slots=True)
class OutcomeRecord:
    """One finished job as persisted."""

    job_id: str
    name: str
    user_dn: str
    status: str
    submitted_at: float
    recovered: bool
    trace_id: str
    outcome_bytes: bytes
    #: Uspace files still fetchable after restart: path -> content.
    files: dict[str, bytes]


class OutcomeStore:
    """Typed view over the backend table holding finished-job records."""

    def __init__(self, storage: StorageBackend, name: str) -> None:
        self._table = storage.table(name)

    def put(self, record: OutcomeRecord) -> None:
        self._table.put(record.job_id, {
            "name": record.name,
            "user_dn": record.user_dn,
            "status": record.status,
            "submitted_at": record.submitted_at,
            "recovered": record.recovered,
            "trace_id": record.trace_id,
            "outcome_bytes": record.outcome_bytes,
            "files": record.files,
        })

    def get(self, job_id: str) -> OutcomeRecord | None:
        raw = typing.cast("dict[str, typing.Any] | None", self._table.get(job_id))
        if raw is None:
            return None
        return OutcomeRecord(
            job_id=job_id,
            name=raw["name"],
            user_dn=raw["user_dn"],
            status=raw["status"],
            submitted_at=raw["submitted_at"],
            recovered=raw["recovered"],
            trace_id=raw["trace_id"],
            outcome_bytes=raw["outcome_bytes"],
            files=dict(raw["files"]),
        )

    def forget(self, job_id: str) -> None:
        self._table.delete(job_id)

    def job_ids(self) -> list[str]:
        return self._table.keys()

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._table

    def __len__(self) -> int:
        return len(self._table)
