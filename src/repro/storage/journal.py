"""The NJS write-ahead journal: crash-recoverable job state.

Section 4.2 makes the NJS the single stateful component between the
user and the batch systems; losing its in-memory tables used to lose
every job in flight.  The journal fixes that with the classic recipe:
every consignment is recorded *before* supervision starts, every batch
delivery is recorded as it happens, and completed jobs are marked done.
After a crash, :meth:`NetworkJobSupervisor.restart` replays every
incomplete entry — same job id, same AJO bytes, same trace — so clients
polling through the outage simply see their job again (flagged
``recovered`` in listings).

The journal is now a thin typed view over a
:class:`~repro.storage.backend.StorageBackend` append-only log.  The
in-memory ``JournalEntry`` table is a cache: :meth:`reload` rebuilds it
record by record from the backend, which is what lets a *cold-started*
NJS (new process, same SQLite file) recover jobs consigned by its
previous life — not just one that kept its Python heap across
:meth:`crash`.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

from repro.storage.backend import StorageBackend
from repro.storage.memory import MemoryBackend

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.observability.metrics import MetricsRegistry

#: ``(corr_id, reply_usite, return_files)`` carried by forwarded groups.
ForwardMeta = tuple[str, str, tuple[str, ...]]

__all__ = ["JournalEntry", "JobJournal"]


@dataclass(slots=True)
class JournalEntry:
    """Everything needed to re-supervise one consigned job."""

    job_id: str
    ajo_bytes: bytes
    user_dn: str
    workstation_files: dict[str, bytes] = field(default_factory=dict)
    trace_id: str = ""
    #: Set for forwarded groups (this NJS is the *child* site).
    parent_job_id: str | None = None
    #: ``(corr_id, reply_usite, return_files)`` for forwarded groups, so
    #: a replayed group can still send its GroupResult home.
    forward_meta: ForwardMeta | None = None
    #: Batch jobs delivered before the crash: ``action_id -> (vsite,
    #: local_id)``.  Replay cancels the survivors before resubmitting.
    delivered: dict[str, tuple[str, str]] = field(default_factory=dict)
    done: bool = False


class JobJournal:
    """In-order journal of consigned jobs over durable backend storage."""

    def __init__(
        self,
        storage: StorageBackend | None = None,
        name: str = "njs.journal",
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.storage = storage if storage is not None else MemoryBackend()
        self.name = name
        self._log = self.storage.log(name)
        self._metrics = metrics
        self._entries: dict[str, JournalEntry] = {}
        self._records_written = 0
        if len(self._log):
            self.reload()

    # -- instrumentation -----------------------------------------------------
    @property
    def records_written(self) -> int:
        """Records appended by this journal instance (compat surface).

        The authoritative count lives in the metrics registry
        (``njs.journal.records``) and the backend's ``storage.writes``.
        """
        return self._records_written

    def _append(self, record: dict[str, typing.Any]) -> None:
        self._log.append(record)
        self._records_written += 1
        if self._metrics is not None:
            self._metrics.counter("njs.journal.records").inc()

    # -- writes (called on the supervision hot path) ------------------------
    def record_consign(
        self,
        job_id: str,
        ajo_bytes: bytes,
        user_dn: str,
        workstation_files: dict[str, bytes] | None = None,
        trace_id: str = "",
        parent_job_id: str | None = None,
        forward_meta: ForwardMeta | None = None,
    ) -> JournalEntry:
        entry = JournalEntry(
            job_id=job_id,
            ajo_bytes=ajo_bytes,
            user_dn=user_dn,
            workstation_files=dict(workstation_files or {}),
            trace_id=trace_id,
            parent_job_id=parent_job_id,
            forward_meta=forward_meta,
        )
        self._entries[job_id] = entry
        self._append({
            "kind": "consign",
            "job_id": job_id,
            "ajo_bytes": ajo_bytes,
            "user_dn": user_dn,
            "workstation_files": entry.workstation_files,
            "trace_id": trace_id,
            "parent_job_id": parent_job_id,
            "forward_meta": (
                None if forward_meta is None else list(forward_meta)
            ),
        })
        return entry

    def record_delivery(
        self, job_id: str, action_id: str, vsite: str, local_id: str
    ) -> None:
        entry = self._entries.get(job_id)
        if entry is not None:
            entry.delivered[action_id] = (vsite, local_id)
            self._append({
                "kind": "delivery",
                "job_id": job_id,
                "action_id": action_id,
                "vsite": vsite,
                "local_id": local_id,
            })

    def record_done(self, job_id: str) -> None:
        entry = self._entries.get(job_id)
        if entry is not None and not entry.done:
            entry.done = True
            self._append({"kind": "done", "job_id": job_id})

    def forget(self, job_id: str) -> None:
        """Drop a disposed job's entry entirely (a tombstone record)."""
        if self._entries.pop(job_id, None) is not None:
            self._append({"kind": "forget", "job_id": job_id})

    # -- recovery ------------------------------------------------------------
    def reload(self) -> None:
        """Rebuild the entry table from the durable log (cold start)."""
        self._entries.clear()
        for record in self._log.records():
            self._fold(typing.cast("dict[str, typing.Any]", record))

    def _fold(self, record: dict[str, typing.Any]) -> None:
        kind = record["kind"]
        job_id = record["job_id"]
        if kind == "consign":
            meta = record["forward_meta"]
            self._entries[job_id] = JournalEntry(
                job_id=job_id,
                ajo_bytes=record["ajo_bytes"],
                user_dn=record["user_dn"],
                workstation_files=dict(record["workstation_files"]),
                trace_id=record["trace_id"],
                parent_job_id=record["parent_job_id"],
                forward_meta=(
                    None if meta is None
                    else (meta[0], meta[1], tuple(meta[2]))
                ),
            )
        elif kind == "delivery":
            entry = self._entries.get(job_id)
            if entry is not None:
                entry.delivered[record["action_id"]] = (
                    record["vsite"], record["local_id"],
                )
        elif kind == "done":
            entry = self._entries.get(job_id)
            if entry is not None:
                entry.done = True
        elif kind == "forget":
            self._entries.pop(job_id, None)

    def incomplete(self) -> list[JournalEntry]:
        """Entries to replay after a crash, in consignment order."""
        return [e for e in self._entries.values() if not e.done]

    def entries(self) -> list[JournalEntry]:
        """Every live entry, in consignment order."""
        return list(self._entries.values())

    def entry(self, job_id: str) -> JournalEntry | None:
        return self._entries.get(job_id)

    def __len__(self) -> int:
        return len(self._entries)
