"""The pluggable persistence layer (tables, logs, snapshots).

Every stateful component of the reproduction — the NJS write-ahead
journal and outcome store, UUDB mappings, resource pages — persists
through one :class:`StorageBackend` interface, selected end to end via
``build_grid(storage=...)`` (or the ``REPRO_STORAGE`` environment
variable).  ``"memory"`` is the deterministic zero-dependency default;
``"sqlite"`` provides real durability in ``:memory:`` or a file.  See
:mod:`repro.storage.backend` for the interface and
:mod:`repro.grid.snapshot` for whole-grid checkpoint/warm-restart built
on top of it.
"""

from repro.storage.backend import (
    Log,
    StorageBackend,
    StorageSpec,
    Table,
    available_backends,
    register_backend,
    resolve_storage,
)
from repro.storage.codec import decode_value, encode_value, from_plain, to_plain
from repro.storage.errors import SnapshotError, StorageError
from repro.storage.journal import JobJournal, JournalEntry
from repro.storage.memory import MemoryBackend
from repro.storage.outcomes import OutcomeRecord, OutcomeStore
from repro.storage.sqlite import SQLiteBackend

__all__ = [
    "JobJournal",
    "JournalEntry",
    "Log",
    "MemoryBackend",
    "OutcomeRecord",
    "OutcomeStore",
    "SQLiteBackend",
    "SnapshotError",
    "StorageBackend",
    "StorageError",
    "StorageSpec",
    "Table",
    "available_backends",
    "decode_value",
    "encode_value",
    "from_plain",
    "register_backend",
    "resolve_storage",
    "to_plain",
]
