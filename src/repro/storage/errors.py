"""Storage-layer errors."""

from __future__ import annotations

from repro.errors import ReproError

__all__ = ["StorageError", "SnapshotError"]


class StorageError(ReproError):
    """A persistence backend refused or failed an operation."""

    code = "storage.backend"


class SnapshotError(StorageError):
    """A grid snapshot could not be taken or restored."""

    code = "storage.snapshot"
