"""The default in-process backend: deterministic, zero-dependency.

Values still pass through the canonical byte codec on every write and
read, so the in-memory backend has *exactly* the round-trip semantics
of SQLite (tuples come back as lists, dict keys as strings, bytes as
bytes) — a test that passes here passes there.
"""

from __future__ import annotations

from repro.storage.backend import StorageBackend

__all__ = ["MemoryBackend"]


class MemoryBackend(StorageBackend):
    """Dictionaries behind the :class:`StorageBackend` interface."""

    kind = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._tables: dict[str, dict[str, bytes]] = {}
        self._logs: dict[str, list[bytes]] = {}

    # -- table primitives ----------------------------------------------------
    def _table_get(self, table: str, key: str) -> bytes | None:
        return self._tables.get(table, {}).get(key)

    def _table_put(self, table: str, key: str, data: bytes) -> None:
        self._tables.setdefault(table, {})[key] = data

    def _table_delete(self, table: str, key: str) -> None:
        self._tables.get(table, {}).pop(key, None)

    def _table_keys(self, table: str) -> list[str]:
        return sorted(self._tables.get(table, {}))

    def _table_dump(self, table: str) -> list[tuple[str, bytes]]:
        rows = self._tables.get(table, {})
        return [(key, rows[key]) for key in sorted(rows)]

    def _table_names(self) -> list[str]:
        return sorted(name for name, rows in self._tables.items() if rows)

    # -- log primitives ------------------------------------------------------
    def _log_append(self, log: str, data: bytes) -> int:
        records = self._logs.setdefault(log, [])
        records.append(data)
        return len(records)

    def _log_records(self, log: str) -> list[bytes]:
        return list(self._logs.get(log, ()))

    def _log_truncate(self, log: str) -> None:
        self._logs.pop(log, None)

    def _log_len(self, log: str) -> int:
        return len(self._logs.get(log, ()))

    def _log_names(self) -> list[str]:
        return sorted(name for name, records in self._logs.items() if records)

    def _clear(self) -> None:
        self._tables.clear()
        self._logs.clear()
