"""Real durability via the stdlib ``sqlite3``.

One database file (or ``:memory:``) holds every table and log of a
deployment in two relations::

    kv  (tbl TEXT, key TEXT, value BLOB)        -- the named tables
    logs(log TEXT, seq INTEGER, value BLOB)     -- the append-only logs

Values are the canonical codec bytes, so a database written by one
process is readable by a cold-started successor — the warm-restart
story of the persistence layer.  :meth:`StorageBackend.batch` maps to a
real transaction: either every record of a consignment lands or none
does.
"""

from __future__ import annotations

import sqlite3

from repro.storage.backend import StorageBackend

__all__ = ["SQLiteBackend"]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS kv (
    tbl   TEXT NOT NULL,
    key   TEXT NOT NULL,
    value BLOB NOT NULL,
    PRIMARY KEY (tbl, key)
);
CREATE TABLE IF NOT EXISTS logs (
    log   TEXT NOT NULL,
    seq   INTEGER NOT NULL,
    value BLOB NOT NULL,
    PRIMARY KEY (log, seq)
);
"""


class SQLiteBackend(StorageBackend):
    """SQLite behind the :class:`StorageBackend` interface."""

    kind = "sqlite"

    def __init__(self, path: str = ":memory:") -> None:
        super().__init__()
        self.path = path
        self._conn = sqlite3.connect(path)
        # The simulation is single-threaded and batches explicitly;
        # autocommit mode keeps the transaction boundaries ours alone.
        self._conn.isolation_level = None
        self._conn.executescript(_SCHEMA)
        self._next_seq: dict[str, int] = {
            log: int(top)
            for log, top in self._conn.execute(
                "SELECT log, MAX(seq) FROM logs GROUP BY log"
            )
        }

    def close(self) -> None:
        self._conn.close()

    # -- table primitives ----------------------------------------------------
    def _table_get(self, table: str, key: str) -> bytes | None:
        row = self._conn.execute(
            "SELECT value FROM kv WHERE tbl = ? AND key = ?", (table, key)
        ).fetchone()
        return None if row is None else bytes(row[0])

    def _table_put(self, table: str, key: str, data: bytes) -> None:
        self._conn.execute(
            "INSERT OR REPLACE INTO kv (tbl, key, value) VALUES (?, ?, ?)",
            (table, key, data),
        )

    def _table_delete(self, table: str, key: str) -> None:
        self._conn.execute(
            "DELETE FROM kv WHERE tbl = ? AND key = ?", (table, key)
        )

    def _table_keys(self, table: str) -> list[str]:
        return [
            row[0]
            for row in self._conn.execute(
                "SELECT key FROM kv WHERE tbl = ? ORDER BY key", (table,)
            )
        ]

    def _table_dump(self, table: str) -> list[tuple[str, bytes]]:
        return [
            (row[0], bytes(row[1]))
            for row in self._conn.execute(
                "SELECT key, value FROM kv WHERE tbl = ? ORDER BY key",
                (table,),
            )
        ]

    def _table_names(self) -> list[str]:
        return [
            row[0]
            for row in self._conn.execute(
                "SELECT DISTINCT tbl FROM kv ORDER BY tbl"
            )
        ]

    # -- log primitives ------------------------------------------------------
    def _log_append(self, log: str, data: bytes) -> int:
        seq = self._next_seq.get(log, 0) + 1
        self._next_seq[log] = seq
        self._conn.execute(
            "INSERT INTO logs (log, seq, value) VALUES (?, ?, ?)",
            (log, seq, data),
        )
        return seq

    def _log_records(self, log: str) -> list[bytes]:
        return [
            bytes(row[0])
            for row in self._conn.execute(
                "SELECT value FROM logs WHERE log = ? ORDER BY seq", (log,)
            )
        ]

    def _log_truncate(self, log: str) -> None:
        self._conn.execute("DELETE FROM logs WHERE log = ?", (log,))
        self._next_seq.pop(log, None)

    def _log_len(self, log: str) -> int:
        row = self._conn.execute(
            "SELECT COUNT(*) FROM logs WHERE log = ?", (log,)
        ).fetchone()
        return int(row[0])

    def _log_names(self) -> list[str]:
        return [
            row[0]
            for row in self._conn.execute(
                "SELECT DISTINCT log FROM logs ORDER BY log"
            )
        ]

    def _clear(self) -> None:
        self._conn.execute("DELETE FROM kv")
        self._conn.execute("DELETE FROM logs")
        self._next_seq.clear()

    # -- transactions --------------------------------------------------------
    def _begin(self) -> None:
        self._conn.execute("BEGIN")

    def _commit(self) -> None:
        self._conn.execute("COMMIT")

    def _rollback(self) -> None:
        self._conn.execute("ROLLBACK")
