"""The pluggable persistence interface: tables, logs, and batches.

Section 4.2 makes the NJS the single stateful tier between users and
batch systems; this module defines the storage surface that state lives
behind, mirroring the transport split of :mod:`repro.net.transport`:

``"memory"``
    :class:`repro.storage.memory.MemoryBackend` — deterministic,
    zero-dependency dictionaries.  The default everywhere.

``"sqlite"``
    :class:`repro.storage.sqlite.SQLiteBackend` — real durability via
    the stdlib ``sqlite3``, either ``:memory:`` or an on-disk file.

The surface is deliberately tiny: named key/value **tables**
(:class:`Table`), named append-only **logs** (:class:`Log`), and a
transactional :meth:`StorageBackend.batch` grouping writes into one
durable unit.  Every stateful component — the NJS journal and outcome
store, UUDB mappings, resource pages — persists through these three
calls only, so flipping the backend never touches component logic.

Backend choice is one argument end to end: ``build_grid(storage=...)``
accepts a name, a ``"sqlite:/path/site.db"`` spec string, or a
:class:`StorageSpec`; ``None`` defers to the ``REPRO_STORAGE``
environment variable (so a whole test suite flips backends with no
per-test opt-ins) and finally to ``"memory"``.
"""

from __future__ import annotations

import os
import typing
from dataclasses import dataclass, field

from repro.storage.codec import decode_value, encode_value
from repro.storage.errors import StorageError

if typing.TYPE_CHECKING:  # pragma: no cover
    import types

    from repro.observability.metrics import MetricsRegistry

__all__ = [
    "Table",
    "Log",
    "StorageBackend",
    "StorageSpec",
    "available_backends",
    "register_backend",
    "resolve_storage",
]

#: Environment variable consulted when no explicit spec is given.
STORAGE_ENV = "REPRO_STORAGE"


class Table:
    """A named key/value table (string keys, codec-plain values)."""

    def __init__(self, backend: "StorageBackend", name: str) -> None:
        self._backend = backend
        self.name = name

    def get(self, key: str, default: object = None) -> object:
        data = self._backend._table_get(self.name, key)
        if data is None:
            return default
        self._backend._count_read(len(data))
        return decode_value(data)

    def put(self, key: str, value: object) -> None:
        data = encode_value(value)
        self._backend._table_put(self.name, key, data)
        self._backend._count_write(len(data))

    def delete(self, key: str) -> None:
        """Remove ``key`` (missing keys are fine)."""
        self._backend._table_delete(self.name, key)
        self._backend._count_write(0)

    def keys(self) -> list[str]:
        return self._backend._table_keys(self.name)

    def items(self) -> list[tuple[str, object]]:
        return [(key, self.get(key)) for key in self.keys()]

    def __contains__(self, key: str) -> bool:
        return self._backend._table_get(self.name, key) is not None

    def __len__(self) -> int:
        return len(self.keys())


class Log:
    """A named append-only record log (the write-ahead-journal shape)."""

    def __init__(self, backend: "StorageBackend", name: str) -> None:
        self._backend = backend
        self.name = name

    def append(self, value: object) -> int:
        """Durably append one record; returns its sequence number."""
        data = encode_value(value)
        seq = self._backend._log_append(self.name, data)
        self._backend._count_write(len(data))
        return seq

    def records(self) -> list[object]:
        """Every record, in append order."""
        rows = self._backend._log_records(self.name)
        self._backend._count_read(sum(len(row) for row in rows))
        return [decode_value(row) for row in rows]

    def truncate(self) -> None:
        """Drop every record (journal compaction)."""
        self._backend._log_truncate(self.name)
        self._backend._count_write(0)

    def __len__(self) -> int:
        return self._backend._log_len(self.name)


class StorageBackend:
    """Abstract persistence backend: tables + logs + transactional batches.

    Subclasses implement the underscore primitives; the public surface
    (:meth:`table`, :meth:`log`, :meth:`batch`, :meth:`dump`,
    :meth:`load`) plus all instrumentation is shared here.

    Counters (``writes``, ``reads``, ``fsyncs``, ``bytes_written``,
    ``bytes_read``) are plain attributes always maintained, and mirror
    into a :class:`~repro.observability.MetricsRegistry` once
    :meth:`bind_metrics` attaches one (``storage.writes`` et al.).
    """

    #: Registry name of the backend (``"memory"``, ``"sqlite"``).
    kind: str = "abstract"

    def __init__(self) -> None:
        self.writes = 0
        self.reads = 0
        self.fsyncs = 0
        self.bytes_written = 0
        self.bytes_read = 0
        self._metrics: MetricsRegistry | None = None
        self._batch_depth = 0

    # -- public surface ------------------------------------------------------
    def table(self, name: str) -> Table:
        return Table(self, name)

    def log(self, name: str) -> Log:
        return Log(self, name)

    def batch(self) -> typing.ContextManager[None]:
        """Group writes into one durable unit (one fsync, all-or-nothing)."""
        return _Batch(self)

    def bind_metrics(self, registry: "MetricsRegistry") -> None:
        """Mirror the storage counters into a metrics registry."""
        self._metrics = registry

    def close(self) -> None:
        """Release backend resources (no-op by default)."""

    # -- snapshot support ----------------------------------------------------
    def dump(self) -> dict[str, typing.Any]:
        """The entire backend contents in codec-plain form."""
        from repro.storage.codec import to_plain

        tables = {
            name: {
                key: to_plain(decode_value(data))
                for key, data in self._table_dump(name)
            }
            for name in self._table_names()
        }
        logs = {
            name: [to_plain(decode_value(row)) for row in self._log_records(name)]
            for name in self._log_names()
        }
        return {"tables": tables, "logs": logs}

    def load(self, dump: dict[str, typing.Any]) -> None:
        """Replace the backend contents with a :meth:`dump`."""
        from repro.storage.codec import from_plain

        self._clear()
        with self.batch():
            for name, rows in dump.get("tables", {}).items():
                for key, value in rows.items():
                    self._table_put(name, key, encode_value(from_plain(value)))
            for name, records in dump.get("logs", {}).items():
                for value in records:
                    self._log_append(name, encode_value(from_plain(value)))

    # -- instrumentation -----------------------------------------------------
    def _count_write(self, nbytes: int) -> None:
        self.writes += 1
        self.bytes_written += nbytes
        if self._metrics is not None:
            self._metrics.counter("storage.writes").inc()
            self._metrics.counter("storage.bytes").inc(nbytes)
        if self._batch_depth == 0:
            self._count_fsync()

    def _count_read(self, nbytes: int) -> None:
        self.reads += 1
        self.bytes_read += nbytes
        if self._metrics is not None:
            self._metrics.counter("storage.reads").inc()

    def _count_fsync(self) -> None:
        self.fsyncs += 1
        if self._metrics is not None:
            self._metrics.counter("storage.fsyncs").inc()

    # -- primitives (subclass responsibility) --------------------------------
    def _table_get(self, table: str, key: str) -> bytes | None:
        raise NotImplementedError

    def _table_put(self, table: str, key: str, data: bytes) -> None:
        raise NotImplementedError

    def _table_delete(self, table: str, key: str) -> None:
        raise NotImplementedError

    def _table_keys(self, table: str) -> list[str]:
        raise NotImplementedError

    def _table_dump(self, table: str) -> list[tuple[str, bytes]]:
        raise NotImplementedError

    def _table_names(self) -> list[str]:
        raise NotImplementedError

    def _log_append(self, log: str, data: bytes) -> int:
        raise NotImplementedError

    def _log_records(self, log: str) -> list[bytes]:
        raise NotImplementedError

    def _log_truncate(self, log: str) -> None:
        raise NotImplementedError

    def _log_len(self, log: str) -> int:
        raise NotImplementedError

    def _log_names(self) -> list[str]:
        raise NotImplementedError

    def _clear(self) -> None:
        raise NotImplementedError

    # -- transaction hooks ---------------------------------------------------
    def _begin(self) -> None:
        """Start a durable unit (outermost batch only)."""

    def _commit(self) -> None:
        """Commit the durable unit (outermost batch only)."""

    def _rollback(self) -> None:
        """Abandon the durable unit after an error (best effort)."""
        self._commit()


class _Batch:
    """Reentrant batch context: one fsync at the outermost commit."""

    def __init__(self, backend: StorageBackend) -> None:
        self._backend = backend

    def __enter__(self) -> None:
        if self._backend._batch_depth == 0:
            self._backend._begin()
        self._backend._batch_depth += 1

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: types.TracebackType | None,
    ) -> None:
        self._backend._batch_depth -= 1
        if self._backend._batch_depth == 0:
            if exc_type is None:
                self._backend._commit()
                self._backend._count_fsync()
            else:
                self._backend._rollback()


@dataclass(frozen=True)
class StorageSpec:
    """A declarative backend choice: registry name plus options.

    Accepted anywhere storage is chosen (``build_grid(storage=...)``,
    ``Usite(storage=...)``) in any of these spellings::

        build_grid(sites)                                  # default "memory"
        build_grid(sites, storage="sqlite")                # by name
        build_grid(sites, storage="sqlite:/tmp/site.db")   # name:path
        build_grid(sites, storage=StorageSpec("sqlite", {"path": "x.db"}))

    ``parse(None)`` consults the ``REPRO_STORAGE`` environment variable
    (same spellings) before falling back to ``"memory"`` — that one hook
    flips an entire test suite onto SQLite with no per-test opt-ins.
    """

    kind: str = "memory"
    options: typing.Mapping[str, object] = field(default_factory=dict)

    @classmethod
    def parse(cls, value: "StorageSpec | str | None") -> "StorageSpec":
        """Coerce ``None`` / a name / a ``name:path`` string into a spec."""
        if value is None:
            value = os.environ.get(STORAGE_ENV) or "memory"
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            kind, _, path = value.partition(":")
            if path:
                return cls(kind=kind, options={"path": path})
            return cls(kind=kind)
        raise TypeError(
            f"storage must be a StorageSpec, backend name, or None; "
            f"got {value!r}"
        )


#: Backend registry: name -> factory(**options) -> StorageBackend.
_REGISTRY: dict[str, typing.Callable[..., StorageBackend]] = {}


def register_backend(
    kind: str, factory: typing.Callable[..., StorageBackend]
) -> None:
    """Register a storage backend under ``kind`` (last wins)."""
    _REGISTRY[kind] = factory


def available_backends() -> list[str]:
    return sorted(_REGISTRY)


def resolve_storage(spec: "StorageSpec | str | None" = None) -> StorageBackend:
    """Instantiate the backend a spec names.

    Raises :class:`StorageError` for an unknown kind, listing what is
    registered.
    """
    parsed = StorageSpec.parse(spec)
    factory = _REGISTRY.get(parsed.kind)
    if factory is None:
        raise StorageError(
            f"unknown storage backend {parsed.kind!r}; "
            f"registered: {', '.join(available_backends()) or '(none)'}"
        )
    return factory(**dict(parsed.options))


def _memory_factory(**options: object) -> StorageBackend:
    from repro.storage.memory import MemoryBackend

    return MemoryBackend(**typing.cast("dict[str, typing.Any]", options))


def _sqlite_factory(**options: object) -> StorageBackend:
    from repro.storage.sqlite import SQLiteBackend

    return SQLiteBackend(**typing.cast("dict[str, typing.Any]", options))


register_backend("memory", _memory_factory)
register_backend("sqlite", _sqlite_factory)
