"""``python -m repro`` — live demonstration and trace inspection.

``repro demo`` (the default) builds the six-site German grid of paper
section 5.7, renders the architecture figures from the live system, runs
a small multi-site job, and prints the JMC view.

``repro trace`` runs one quickstart job end to end and pretty-prints its
span tree — the per-job trace assembled as the AJO flows client →
gateway → NJS → batch → outcome return — optionally exporting the trace
and the metrics snapshot as JSON.

``repro lint`` runs the consign-time static analyzer over serialized
AJO files (the ``encode_ajo`` wire format) and reports the diagnostics,
human-readable or as JSON — the same checks the JPA and NJS apply, made
available for CI pipelines.

``repro snapshot`` runs a quickstart workload on the German grid and
checkpoints the whole deployment to a file; ``repro restore`` thaws such
a file into a fresh grid and reports what came back — the whole-grid
warm-restart path, demonstrable from the shell.

``repro devlint`` points the same static-analysis discipline at the
codebase itself: determinism, error-code registry, observability
registry, and protocol consistency (the RD1xx–RD4xx rule packs of
``repro.devlint``).  It is the hard lint gate in CI.
"""

import argparse
import json
import sys

from repro.ajo.serialize import decode_ajo
from repro.analysis import AnalysisContext, analyze_ajo
from repro.api import GridSession
from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_german_grid, figure1, figure2
from repro.grid.metrics import TierTimes
from repro.observability import telemetry_for
from repro.resources import ResourceRequest


def demo() -> None:
    print("Building the six-site German UNICORE grid (paper section 5.7)...")
    grid = build_german_grid(seed=1999)
    user = grid.add_user(
        "Demo User", organization="FZ Juelich",
        logins={site: "demo" for site in grid.usites},
    )

    print()
    print(figure2(grid))
    print()
    print(figure1(grid.usites["FZJ"]))

    print("\nConnecting (mutual https authentication + applet verification)...")
    session = GridSession(grid, user, "FZJ")

    root = session.new_job("demo", vsite="FZJ-T3E")
    pre = root.script_task(
        "preprocess", script="#!/bin/sh\nprep\n",
        resources=ResourceRequest(cpus=8, time_s=3600),
        simulated_runtime_s=600.0,
    )
    remote = root.sub_job("render@ZIB", vsite="ZIB-SP2", usite="ZIB")
    remote.script_task(
        "render", script="#!/bin/sh\nrender\n",
        resources=ResourceRequest(cpus=8, time_s=3600),
        simulated_runtime_s=300.0,
    )
    root.depends(pre, remote.ajo, files=["field.dat"])

    handle = session.submit(root)
    print(f"consigned {handle}")
    final = session.wait(handle)
    print(f"\nfinal status: {final.status} "
          f"(t = {grid.sim.now:.0f} simulated seconds)\n")
    print(session.render(final))
    print("\nRun `pytest benchmarks/ --benchmark-only -s` for the full "
          "experiment suite (see EXPERIMENTS.md).")


def run_traced_job(runtime_s: float = 600.0):
    """Run one single-site quickstart job; returns ``(grid, session, job_id)``.

    The job's trace is afterwards available from
    ``telemetry_for(grid.sim).tracer.trace(job_id)``.
    """
    grid = build_german_grid(seed=1999)
    user = grid.add_user(
        "Trace User", organization="FZ Juelich",
        logins={site: "trace" for site in grid.usites},
    )
    session = grid.connect_user(user, "FZJ")
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)

    job = jpa.new_job("traced", vsite="FZJ-T3E")
    job.script_task(
        "work", script="#!/bin/sh\nwork\n",
        resources=ResourceRequest(cpus=8, time_s=max(3600.0, 2 * runtime_s)),
        simulated_runtime_s=runtime_s,
    )

    def scenario(sim):
        job_id = yield from jpa.submit(job)
        yield from jmc.wait_for_completion(job_id)
        yield from jmc.outcome(job_id)
        return job_id

    job_id = grid.sim.run(until=grid.sim.process(scenario(grid.sim)))
    return grid, session, job_id


def trace_command(args: argparse.Namespace) -> None:
    grid, session, job_id = run_traced_job(runtime_s=args.runtime)
    telemetry = telemetry_for(grid.sim)
    trace = telemetry.tracer.trace(job_id)
    session_trace = (
        telemetry.tracer.trace(session.trace_id) if session.trace_id else None
    )

    print(f"job {job_id} (simulated until t={grid.sim.now:.1f}s)")
    print()
    print(trace.render())
    print()
    print("tier breakdown (TierTimes.from_trace):")
    tiers = TierTimes.from_trace(trace, session_trace=session_trace)
    for label, seconds in tiers.rows():
        print(f"  {label:<32} {seconds:>10.3f}s")
    print(f"  {'middleware total':<32} {tiers.middleware_total():>10.3f}s")

    if args.json:
        export = {
            "job_id": job_id,
            "trace": trace.to_json(),
            "session_trace": session_trace.to_json() if session_trace else None,
            "metrics": telemetry.metrics.snapshot(),
        }
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(export, fh, indent=2)
        print(f"\nwrote JSON export to {args.json}")


def lint_command(args: argparse.Namespace) -> None:
    """Analyze serialized AJO files; exit 1 if any carries errors."""
    context = AnalysisContext()
    reports = []
    for path in args.paths:
        try:
            with open(path, "rb") as fh:
                job = decode_ajo(fh.read())
        except (OSError, ValueError) as err:
            print(f"{path}: cannot read AJO: {err}", file=sys.stderr)
            sys.exit(2)
        # Off-line lint: the user DN travels with the consignment, not
        # necessarily inside a stored AJO file, so don't require it.
        reports.append((path, analyze_ajo(job, context, require_user=False)))

    if args.json:
        print(json.dumps(
            [dict(report.to_dict(), path=path) for path, report in reports],
            indent=2,
        ))
    else:
        for path, report in reports:
            print(f"{path}:")
            print(report.render())
    if any(not report.ok for _, report in reports):
        sys.exit(1)


def devlint_command(args: argparse.Namespace) -> None:
    """Lint the codebase's own invariants; exit 1 on errors."""
    from pathlib import Path

    from repro.devlint import load_baseline, run_devlint, write_baseline

    baseline: set[str] = set()
    baseline_path = Path(args.baseline) if args.baseline else None
    if baseline_path is not None and not args.write_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except FileNotFoundError:
            print(
                f"devlint: baseline {baseline_path} does not exist "
                "(use --write-baseline to create it)",
                file=sys.stderr,
            )
            sys.exit(2)
        except ValueError as err:
            print(f"devlint: {err}", file=sys.stderr)
            sys.exit(2)

    report = run_devlint(baseline=baseline)

    if args.write_baseline:
        if baseline_path is None:
            print(
                "devlint: --write-baseline requires --baseline PATH",
                file=sys.stderr,
            )
            sys.exit(2)
        count = write_baseline(baseline_path, report)
        print(f"devlint: wrote {count} suppression(s) to {baseline_path}")
        return

    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    if not report.ok:
        sys.exit(1)


def snapshot_command(args: argparse.Namespace) -> None:
    """Run a small workload, then checkpoint the whole grid to a file."""
    print(f"Building the German grid (storage={args.storage!r})...")
    grid = build_german_grid(seed=args.seed, storage=args.storage)
    user = grid.add_user(
        "Snapshot User", organization="FZ Juelich",
        logins={site: "snap" for site in grid.usites},
    )
    session = GridSession(grid, user, "FZJ")
    job = session.new_job("checkpointed", vsite="FZJ-T3E")
    job.script_task(
        "work", script="#!/bin/sh\nwork\n",
        resources=ResourceRequest(cpus=8, time_s=max(3600.0, 2 * args.runtime)),
        simulated_runtime_s=args.runtime,
    )
    handle = session.submit(job)
    final = session.wait(handle)
    print(f"job {handle.job_id}: {final.status} at t={grid.sim.now:.1f}s")
    snap = session.snapshot()
    snap.save(args.out)
    print(f"wrote {snap!r} to {args.out}")


def restore_command(args: argparse.Namespace) -> None:
    """Thaw a saved snapshot and report the recovered state."""
    from repro.grid import build_grid

    grid = build_grid(restore_from=args.path, storage=args.storage or None)
    print(
        f"restored grid at t={grid.sim.now:.1f}s: "
        f"{len(grid.usites)} site(s), {len(grid.users)} user(s)"
    )
    for name in sorted(grid.usites):
        journal = grid.usites[name].njs.journal
        entries = journal.entries()
        done = sum(1 for e in entries if e.done)
        print(
            f"  {name}: {len(entries)} journaled job(s) "
            f"({done} finished, {len(entries) - done} replayed)"
        )


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="repro", description="UNICORE reproduction command line"
    )
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("demo", help="run the six-site grid demonstration")
    trace_parser = sub.add_parser(
        "trace", help="run one job and pretty-print its span tree"
    )
    trace_parser.add_argument(
        "--runtime", type=float, default=600.0,
        help="simulated execution time of the traced job (seconds)",
    )
    trace_parser.add_argument(
        "--json", metavar="PATH", default="",
        help="also write the trace + metrics snapshot as JSON",
    )
    lint_parser = sub.add_parser(
        "lint", help="statically analyze serialized AJO files"
    )
    lint_parser.add_argument(
        "paths", nargs="+", metavar="AJO",
        help="files in the encode_ajo wire format",
    )
    lint_parser.add_argument(
        "--json", action="store_true",
        help="emit the diagnostics as JSON instead of text",
    )
    devlint_parser = sub.add_parser(
        "devlint",
        help="lint the codebase's own invariants (RD1xx-RD4xx rule packs)",
    )
    devlint_parser.add_argument(
        "--json", action="store_true",
        help="emit the report as JSON instead of text",
    )
    devlint_parser.add_argument(
        "--baseline", metavar="PATH", default="",
        help="JSON suppression file of accepted legacy findings",
    )
    devlint_parser.add_argument(
        "--write-baseline", action="store_true",
        help="write all current findings to --baseline and exit 0",
    )
    snap_parser = sub.add_parser(
        "snapshot", help="run a workload and checkpoint the grid to a file"
    )
    snap_parser.add_argument(
        "--out", metavar="PATH", default="grid.snapshot",
        help="where to write the snapshot (default: grid.snapshot)",
    )
    snap_parser.add_argument("--seed", type=int, default=1999)
    snap_parser.add_argument(
        "--runtime", type=float, default=600.0,
        help="simulated execution time of the checkpointed job (seconds)",
    )
    snap_parser.add_argument(
        "--storage", default="memory",
        help='durable backend: "memory", "sqlite", or "sqlite:/path/grid.db"',
    )
    restore_parser = sub.add_parser(
        "restore", help="thaw a saved snapshot and report the recovered state"
    )
    restore_parser.add_argument("path", metavar="SNAPSHOT")
    restore_parser.add_argument(
        "--storage", default="",
        help="override the snapshot's storage backend (optional)",
    )
    args = parser.parse_args(argv)
    if args.command == "trace":
        trace_command(args)
    elif args.command == "lint":
        lint_command(args)
    elif args.command == "devlint":
        devlint_command(args)
    elif args.command == "snapshot":
        snapshot_command(args)
    elif args.command == "restore":
        restore_command(args)
    else:
        demo()


if __name__ == "__main__":
    main(sys.argv[1:])
