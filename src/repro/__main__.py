"""``python -m repro`` — a one-command live demonstration.

Builds the six-site German grid of paper section 5.7, renders the
architecture figures from the live system, runs a small multi-site job,
and prints the JMC view — the fastest way to see the reproduction work.
"""

from repro.client import JobMonitorController, JobPreparationAgent
from repro.grid import build_german_grid, figure1, figure2
from repro.resources import ResourceRequest


def main() -> None:
    print("Building the six-site German UNICORE grid (paper section 5.7)...")
    grid = build_german_grid(seed=1999)
    user = grid.add_user(
        "Demo User", organization="FZ Juelich",
        logins={site: "demo" for site in grid.usites},
    )

    print()
    print(figure2(grid))
    print()
    print(figure1(grid.usites["FZJ"]))

    print("\nConnecting (mutual https authentication + applet verification)...")
    session = grid.connect_user(user, "FZJ")
    jpa = JobPreparationAgent(session)
    jmc = JobMonitorController(session)

    root = jpa.new_job("demo", vsite="FZJ-T3E")
    pre = root.script_task(
        "preprocess", script="#!/bin/sh\nprep\n",
        resources=ResourceRequest(cpus=8, time_s=3600),
        simulated_runtime_s=600.0,
    )
    remote = root.sub_job("render@ZIB", vsite="ZIB-SP2", usite="ZIB")
    remote.script_task(
        "render", script="#!/bin/sh\nrender\n",
        resources=ResourceRequest(cpus=8, time_s=3600),
        simulated_runtime_s=300.0,
    )
    root.depends(pre, remote.ajo, files=["field.dat"])

    def scenario(sim):
        job_id = yield from jpa.submit(root)
        print(f"consigned {job_id}")
        final = yield from jmc.wait_for_completion(job_id)
        tree = yield from jmc.status(job_id)
        return final, tree

    final, tree = grid.sim.run(until=grid.sim.process(scenario(grid.sim)))
    print(f"\nfinal status: {final['status']} "
          f"(t = {grid.sim.now:.0f} simulated seconds)\n")
    print(JobMonitorController.render_tree(tree))
    print("\nRun `pytest benchmarks/ --benchmark-only -s` for the full "
          "experiment suite (see EXPERIMENTS.md).")


if __name__ == "__main__":
    main()
