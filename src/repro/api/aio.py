"""The asyncio facade: awaitable sessions over either transport.

:class:`AsyncGridSession` exposes the same verbs as the blocking
:class:`~repro.api.sync.GridSession` — submit/status/wait/outcome plus
the full JMC surface — as coroutines, driving the very same
:class:`~repro.api._core.SessionCore` plan generators.  On the
simkernel backend each ``await`` runs the plan deterministically to
completion; on the ``"aio"`` backend the plan is handed to the
transport pump, so many sessions progress concurrently while their WAN
messages travel over real TCP sockets::

    grid = build_grid({"FZJ": ["FZJ-T3E"]}, transport="aio")
    grid.add_user("Clara Grid", logins={"FZJ": "clara"})

    async def main():
        async with await grid.network.start():
            session = await AsyncGridSession.connect(grid, "Clara Grid", "FZJ")
            job = await session.new_job("hello")
            ...
            handle = await session.submit(job)        # -> AsyncJobHandle
            final = await handle.wait()
            print((await handle.outcome()).stdout)

:meth:`AsyncGridSession.submit` returns an :class:`AsyncJobHandle`,
which carries the plain :class:`~repro.api.JobHandle` (``.handle``) and
awaitable per-job verbs; the session verbs accept either form.
"""

from __future__ import annotations

import typing

from repro.api._core import JobHandle, SessionCore
from repro.client.jpa import JobBuilder
from repro.faults.breaker import CircuitBreaker
from repro.net.errors import TransportMismatch
from repro.net.transport import TransportSpec
from repro.protocol.views import JobListing, JobStatusView

if typing.TYPE_CHECKING:
    from repro.grid.build import Grid, GridUser

__all__ = ["AsyncGridSession", "AsyncJobHandle"]

_AnyHandle = "AsyncJobHandle | JobHandle | str"


class AsyncJobHandle:
    """An awaitable view of one consigned job.

    Wraps the immutable :class:`~repro.api.JobHandle` (exposed as
    :attr:`handle`, with its fields passed through) and the session it
    was submitted on, so per-job verbs read naturally::

        handle = await session.submit(job)
        await handle.wait()
        print((await handle.outcome()).stdout)
    """

    __slots__ = ("_session", "handle")

    def __init__(self, session: "AsyncGridSession", handle: JobHandle) -> None:
        self._session = session
        self.handle = handle

    @property
    def job_id(self) -> str:
        return self.handle.job_id

    @property
    def name(self) -> str:
        return self.handle.name

    @property
    def usite(self) -> str:
        return self.handle.usite

    @property
    def vsite(self) -> str:
        return self.handle.vsite

    @property
    def trace_id(self) -> str:
        return self.handle.trace_id

    @property
    def failed_over(self) -> bool:
        return self.handle.failed_over

    def __str__(self) -> str:
        return self.handle.job_id

    def __repr__(self) -> str:
        return f"<AsyncJobHandle {self.handle.job_id}>"

    async def status(self, allow_stale: bool = True) -> JobStatusView:
        return await self._session.status(self.handle, allow_stale)

    async def wait(
        self, max_polls: int = 10_000, subscribe: bool = True
    ) -> JobStatusView:
        return await self._session.wait(self.handle, max_polls, subscribe)

    async def outcome(self):
        return await self._session.outcome(self.handle)

    async def cancel(self) -> dict:
        return await self._session.cancel(self.handle)

    async def hold(self) -> dict:
        return await self._session.hold(self.handle)

    async def resume(self) -> dict:
        return await self._session.resume(self.handle)

    async def fetch_file(self, path: str, save_as: str | None = None) -> bytes:
        return await self._session.fetch_file(self.handle, path, save_as)

    async def dispose(self) -> dict:
        return await self._session.dispose(self.handle)


class AsyncGridSession(SessionCore):
    """A user's awaitable connection to the grid.

    Open with :meth:`connect` (the handshake must be awaited)::

        session = await AsyncGridSession.connect(grid, "Clara Grid", "FZJ")

    On a realtime transport, ``connect`` also starts the transport's
    server socket and opens the user's WAN connection, so a bare
    ``build_grid(..., transport="aio")`` grid works without manual
    plumbing.  Verbs accept :class:`AsyncJobHandle`, plain
    :class:`JobHandle`, or a raw job-id string.
    """

    @classmethod
    async def connect(
        cls,
        grid: "Grid",
        user: "GridUser | str",
        usite: str,
        breaker: CircuitBreaker | None = None,
        failover: bool = True,
        transport: "TransportSpec | str | None" = None,
    ) -> "AsyncGridSession":
        """Open a session: handshake, applets, pages, circuit breaker."""
        if transport is not None:
            spec = TransportSpec.parse(transport)
            if spec.kind != grid.network.kind:
                raise TransportMismatch(
                    f"session requested the {spec.kind!r} transport but the "
                    f"grid was built with {grid.network.kind!r}; pass "
                    f"transport={spec.kind!r} to build_grid"
                )
        self = cls(grid, user, usite, breaker=breaker, failover=failover)
        net = grid.network
        if getattr(net, "realtime", False):
            await net.start()
            await net.ensure_host(self.user.browser.host.name)
        await self._adrive(self.setup_plan(), name="connect")
        return self

    # -- plumbing ------------------------------------------------------------
    async def _adrive(self, gen: typing.Generator, name: str):
        """Drive one plan generator to completion (awaitable pattern)."""
        proc = self.sim.process(gen, name=f"api:{name}:{self.user.name}")
        net = self.grid.network
        if getattr(net, "realtime", False):
            return await net.drive(proc)
        # Deterministic backend: the plan runs to completion inline, the
        # same single-threaded schedule the blocking facade produces.
        return self.sim.run(until=proc)

    # -- authoring -----------------------------------------------------------
    async def new_job(
        self,
        name: str,
        vsite: str | None = None,
        usite: str | None = None,
        account_group: str = "",
    ) -> JobBuilder:
        """A builder bound for ``vsite`` (default: the home Usite's first)."""
        return await self._adrive(
            self.new_job_plan(name, vsite, usite, account_group),
            name=f"new_job:{name}",
        )

    # -- the four verbs ------------------------------------------------------
    async def submit(
        self, job: JobBuilder, workstation=None, broker: bool = False
    ) -> AsyncJobHandle:
        """Consign ``job``; see :meth:`SessionCore.submit_plan`."""
        handle = await self._adrive(
            self.submit_plan(job, workstation, broker),
            name=f"submit:{job.ajo.name}",
        )
        return AsyncJobHandle(self, handle)

    async def status(
        self, handle: _AnyHandle, allow_stale: bool = True
    ) -> JobStatusView:
        """The job's status tree; a cached view marked stale during outages."""
        return await self._adrive(
            self.status_plan(self._unwrap(handle), allow_stale), name="status"
        )

    async def wait(
        self,
        handle: _AnyHandle,
        max_polls: int = 10_000,
        subscribe: bool = True,
    ) -> JobStatusView:
        """Wait until the job is terminal; see :meth:`SessionCore.wait_plan`."""
        return await self._adrive(
            self.wait_plan(self._unwrap(handle), max_polls, subscribe),
            name="wait",
        )

    async def outcome(self, handle: _AnyHandle):
        """The full Outcome tree (stdout/stderr included) of a finished job."""
        return await self._adrive(
            self.outcome_plan(self._unwrap(handle)), name="outcome"
        )

    async def cancel(self, handle: _AnyHandle) -> dict:
        """Abort the job wherever its parts currently are."""
        return await self._adrive(
            self.cancel_plan(self._unwrap(handle)), name="cancel"
        )

    # -- the rest of the JMC, facaded for completeness -----------------------
    async def hold(self, handle: _AnyHandle) -> dict:
        return await self._adrive(self.hold_plan(self._unwrap(handle)), name="hold")

    async def resume(self, handle: _AnyHandle) -> dict:
        return await self._adrive(
            self.resume_plan(self._unwrap(handle)), name="resume"
        )

    async def list_jobs(self, usite: str | None = None) -> list[JobListing]:
        """The user's jobs at one Usite (default: the home site)."""
        return await self._adrive(self.list_jobs_plan(usite), name="list")

    async def fetch_file(
        self, handle: _AnyHandle, path: str, save_as: str | None = None
    ) -> bytes:
        """Bring one Uspace file back to the user's workstation."""
        return await self._adrive(
            self.fetch_file_plan(self._unwrap(handle), path, save_as),
            name="fetch",
        )

    async def dispose(self, handle: _AnyHandle) -> dict:
        return await self._adrive(
            self.dispose_plan(self._unwrap(handle)), name="dispose"
        )

    # -- simulation helper ---------------------------------------------------
    async def advance(self, seconds: float) -> None:
        """Let simulated time pass (jobs run; nothing blocks on it)."""
        await self._adrive(self.sleep_plan(seconds), name="advance")

    @staticmethod
    def _unwrap(handle: _AnyHandle) -> "JobHandle | str":
        return handle.handle if isinstance(handle, AsyncJobHandle) else handle
