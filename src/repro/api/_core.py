"""The shared session core both facades drive.

Every facade verb — submit with broker failover, subscription wait with
steal-following, bulk fetch, the lot — is implemented here exactly once,
as a *plan*: a simkernel generator that yields the events it waits on.
The blocking :class:`~repro.api.sync.GridSession` drives a plan with
``sim.run(until=process)``; the asyncio
:class:`~repro.api.aio.AsyncGridSession` hands the same process to the
transport pump.  Because the two facades share the generator bodies,
their observable behavior cannot drift — the property the backend-parity
test suite pins down.

The resilience mechanisms of :mod:`repro.faults` live in these plans:

* a :class:`~repro.faults.breaker.CircuitBreaker` guards the protocol
  client, so a dead gateway fails fast instead of burning retry budget;
* a consign that times out is re-targeted through the section-6
  :class:`~repro.broker.placement.ResourceBroker` to the next-best Vsite
  (possibly at another Usite — the session reconnects transparently);
* ``status`` serves the last known view marked ``stale`` when the
  gateway is unreachable (graceful degradation, never a blank screen);
* ``wait`` rides out gateway/NJS crash windows that outlast the
  protocol retry policy.

Everything here is sugar over the applet classes — the generators in
:mod:`repro.client` remain the primitive API for multi-user workloads
that interleave inside one simulation.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.broker.errors import BrokerError, NoCapacityError
from repro.broker.placement import ResourceBroker
from repro.client.jmc import JobMonitorController
from repro.client.jpa import JobBuilder, JobPreparationAgent
from repro.faults.breaker import CircuitBreaker
from repro.faults.errors import CircuitOpenError, ServiceUnavailable
from repro.net.errors import ConnectionLost
from repro.observability import telemetry_for
from repro.protocol.retry import RetryExhausted
from repro.protocol.views import JobListing, JobStatusView
from repro.resources.model import ResourceRequest
from repro.errors import ReproError

if typing.TYPE_CHECKING:
    from repro.broker.matcher import BrokerJob
    from repro.client.browser import UnicoreSession
    from repro.grid.build import Grid, GridUser

__all__ = ["JobHandle", "SessionCore"]

#: Errors that mean "the road to the Usite is out" (or its NJS is), not
#: "the job is bad" — the ones worth retrying elsewhere.
_TRANSPORT_ERRORS = (
    RetryExhausted, CircuitOpenError, ConnectionLost, ServiceUnavailable,
)

#: One per-Usite client tier: authenticated session, JPA, JMC.
_Tier = tuple["UnicoreSession", JobPreparationAgent, JobMonitorController]


@dataclass(frozen=True, slots=True)
class JobHandle:
    """An opaque reference to one consigned job.

    Carries the Usite the job actually landed on — after a broker
    failover that may differ from the session's home site, and every
    facade verb routes through the right gateway because of it.
    """

    job_id: str
    name: str
    usite: str
    vsite: str
    #: Trace of the whole submit->outcome pipeline (see observability).
    trace_id: str = ""
    #: True when the consign was re-targeted by the broker after the
    #: primary Vsite timed out.
    failed_over: bool = False

    def __str__(self) -> str:  # handles read naturally in logs
        return self.job_id


class SessionCore:
    """State plus plan generators for one user's grid session.

    Not a public entry point: instantiate
    :class:`~repro.api.sync.GridSession` or
    :class:`~repro.api.aio.AsyncGridSession` instead.  The ``*_plan``
    methods return simkernel generators; a facade runs
    :meth:`setup_plan` once after construction, then one plan per verb.
    """

    #: How many broker-ranked alternates to try after a consign timeout.
    FAILOVER_CANDIDATES = 3
    #: ``wait`` tolerance for outages longer than the retry policy:
    #: how many times to re-enter the poll loop, and the pause between
    #: attempts (comfortably past the breaker cooldown).
    WAIT_OUTAGE_RETRIES = 8
    WAIT_RETRY_DELAY_S = 120.0
    #: Brokered submissions unbound after this long raise NoCapacityError.
    BROKER_BIND_TIMEOUT_S = 48 * 3600.0
    #: How far to advance the clock while a stolen job awaits rebinding.
    BROKER_REBIND_WAIT_S = 30.0
    #: How many rebind-waits to grant a "killed" answer on a live broker
    #: entry before believing it (a steal's kill is visible to a
    #: subscription wait before the reclaim ack unbinds the entry).
    STEAL_GRACE_ROUNDS = 10

    def __init__(
        self,
        grid: "Grid",
        user: "GridUser | str",
        usite: str,
        breaker: CircuitBreaker | None = None,
        failover: bool = True,
    ) -> None:
        self.grid = grid
        self.user = grid.users[user] if isinstance(user, str) else user
        self.usite = usite
        self.failover_enabled = failover
        self.sim = grid.sim
        self.breaker = breaker
        self._telemetry = telemetry_for(grid.sim)
        #: Usite name -> (UnicoreSession, JPA, JMC); the home site is
        #: connected by :meth:`setup_plan`, failover sites lazily.
        self._tiers: dict[str, _Tier] = {}
        #: Connects in flight (one per Usite), so concurrent plans on an
        #: async facade share a handshake instead of racing two.
        self._tier_waits: dict[str, object] = {}
        #: Original job id -> live broker entry, for late-bound jobs:
        #: after a steal the entry names the job's *current* id and site.
        self._brokered: dict[str, "BrokerJob"] = {}

    @property
    def session(self) -> "UnicoreSession":
        """The underlying authenticated session with the home Usite."""
        return self._tiers[self.usite][0]

    # -- plumbing ------------------------------------------------------------
    def setup_plan(self) -> typing.Generator:
        """Connect the home tier and arm the circuit breaker (run once)."""
        session, _, _ = yield from self._connect_plan(self.usite)
        if self.breaker is None:
            self.breaker = CircuitBreaker(
                self.sim, name=f"{self.user.name}@{self.usite}"
            )
        session.client.breaker = self.breaker
        return self

    def _connect_plan(self, usite: str) -> typing.Generator:
        """Yield the (session, JPA, JMC) tier for ``usite``, connecting once."""
        while True:
            tier = self._tiers.get(usite)
            if tier is not None:
                return tier
            pending = self._tier_waits.get(usite)
            if pending is None:
                break
            yield pending  # another plan is mid-handshake; share its result
        done = self.sim.event(name=f"tier:{usite}")
        self._tier_waits[usite] = done
        try:
            session = yield from self.grid.connect_plan(self.user, usite)
            tier = (
                session,
                JobPreparationAgent(session),
                JobMonitorController(session),
            )
            self._tiers[usite] = tier
        finally:
            del self._tier_waits[usite]
            done.succeed()  # waiters re-check _tiers (and retry on failure)
        return tier

    @staticmethod
    def _job_id(handle: "JobHandle | str") -> str:
        return handle.job_id if isinstance(handle, JobHandle) else handle

    def _resolve(self, handle: "JobHandle | str") -> tuple[str, str]:
        """The job's *current* (job_id, usite) — work stealing moves a
        late-bound job, and every verb must follow it."""
        job_id = self._job_id(handle)
        usite = handle.usite if isinstance(handle, JobHandle) else self.usite
        entry = self._brokered.get(job_id)
        if entry is not None and entry.job_id and entry.job_id != job_id:
            return entry.job_id, entry.usite
        return job_id, usite

    def _target_plan(self, handle: "JobHandle | str") -> typing.Generator:
        job_id, usite = self._resolve(handle)
        tier = yield from self._connect_plan(usite)
        return tier[2], job_id

    # -- authoring -----------------------------------------------------------
    def new_job_plan(
        self,
        name: str,
        vsite: str | None = None,
        usite: str | None = None,
        account_group: str = "",
    ) -> typing.Generator:
        """A builder bound for ``vsite`` (default: the home Usite's first).

        Naming another ``usite`` authors the job against that site's
        gateway instead; the submit plan routes it there automatically.
        """
        usite = usite or self.usite
        if vsite is None:
            vsite = next(iter(self.grid.usites[usite].vsites))
        tier = yield from self._connect_plan(usite)
        return tier[1].new_job(name, vsite=vsite, account_group=account_group)

    # -- the four verbs ------------------------------------------------------
    def submit_plan(
        self, job: JobBuilder, workstation=None, broker: bool = False
    ) -> typing.Generator:
        """Consign ``job``; on timeout, fail over via the resource broker.

        Returns a :class:`JobHandle` naming the site that accepted the
        job.  Validation failures raise immediately (another Vsite would
        reject the same job); only transport-level failures — retry
        budget exhausted, circuit open, connection lost — trigger the
        broker.

        With ``broker=True`` the job is *late-bound* instead: it enters
        the grid's :class:`~repro.broker.service.FederationBroker` task
        queue without a destination, and the broker binds it to a Vsite
        (anywhere in the federation) at dispatch time from live capacity
        advertisements, under fair-share quotas.  Over-quota submissions
        raise :class:`~repro.broker.errors.BrokerQuotaError` immediately.
        """
        if broker:
            handle = yield from self._submit_brokered_plan(job, workstation)
            return handle
        workstation = workstation or self.user.workstation
        ajo = job.ajo
        home_vsite, home_usite = ajo.vsite, ajo.usite
        tier = yield from self._connect_plan(ajo.usite)
        try:
            job_id = yield from tier[1].submit(job, workstation=workstation)
            return self._handle_for(job_id, ajo, failed_over=False)
        except _TRANSPORT_ERRORS as primary_err:
            if not self.failover_enabled:
                raise
            handle = yield from self._submit_failover_plan(
                job, workstation, primary_err
            )
            if handle is None:
                ajo.vsite, ajo.usite = home_vsite, home_usite
                raise
            return handle

    def _submit_brokered_plan(
        self, job: JobBuilder, workstation
    ) -> typing.Generator:
        """The late-binding path: enqueue, then wait until first bound.

        The dispatch factory re-targets the root group to whatever
        destination the broker picks and consigns through this session's
        per-site tiers; those are connected eagerly here because the
        factory runs *inside* the simulation, past the point where a
        handshake could still be interleaved.
        """
        federation = getattr(self.grid, "broker", None)
        if federation is None:
            raise BrokerError(
                "no federation broker attached to this grid; call "
                "repro.broker.attach_broker(grid) first"
            )
        workstation = workstation or self.user.workstation
        ajo = job.ajo
        for usite in self.grid.usites:
            yield from self._connect_plan(usite)

        def dispatch(usite: str, vsite: str):
            ajo.vsite, ajo.usite = vsite, usite
            return self._tiers[usite][1].submit(job, workstation=workstation)

        entry = federation.submit(
            self.session.user_dn,
            ajo.name,
            self._aggregate_request(ajo),
            software=tuple(self._required_software(ajo)),
            dispatch=dispatch,
            bind_timeout_s=self.BROKER_BIND_TIMEOUT_S,
        )
        yield entry.bound
        if not entry.job_id:
            raise NoCapacityError(
                f"broker could not place job {ajo.name!r}: "
                f"{entry.error or 'bind timeout'}"
            )
        handle = self._handle_for(entry.job_id, ajo, failed_over=False)
        self._brokered[handle.job_id] = entry
        return handle

    def _handle_for(self, job_id: str, ajo, failed_over: bool) -> JobHandle:
        tracer = self._telemetry.tracer
        return JobHandle(
            job_id=job_id,
            name=ajo.name,
            usite=ajo.usite,
            vsite=ajo.vsite,
            trace_id=tracer.trace_id_for_job(job_id) or "",
            failed_over=failed_over,
        )

    def _submit_failover_plan(
        self, job: JobBuilder, workstation, primary_err: Exception
    ) -> typing.Generator:
        """Re-target the AJO to broker-ranked alternates, best first."""
        ajo = job.ajo
        failed_vsite = ajo.vsite
        broker = ResourceBroker.for_grid(self.grid)
        ranked = [
            cand
            for cand in broker.candidates(
                self._aggregate_request(ajo), self._required_software(ajo)
            )
            if cand.vsite != failed_vsite
        ][: self.FAILOVER_CANDIDATES]
        metrics = self._telemetry.metrics
        tracer = self._telemetry.tracer
        for cand in ranked:
            metrics.counter("api.failover_attempts").inc()
            span = tracer.start_span(
                "session.failover",
                tracer.new_trace("failover"),
                tier="user",
                job=ajo.name,
                from_vsite=failed_vsite,
                to_vsite=cand.vsite,
                cause=type(primary_err).__name__,
            )
            ajo.vsite, ajo.usite = cand.vsite, cand.usite
            try:
                tier = yield from self._connect_plan(cand.usite)
                job_id = yield from tier[1].submit(job, workstation=workstation)
            except ReproError as err:
                # This alternate is down or refuses the user; try the next.
                tracer.end_span(span, error=err)
                continue
            tracer.end_span(span.set(job_id=job_id))
            metrics.counter("api.failovers").inc()
            return self._handle_for(job_id, ajo, failed_over=True)
        return None

    @staticmethod
    def _aggregate_request(ajo) -> ResourceRequest:
        """The job's peak demands, for broker feasibility ranking."""
        cpus, time_s, memory = 1, 0.0, 0.0
        for node in ajo.walk():
            res = getattr(node, "resources", None)
            if isinstance(res, ResourceRequest):
                cpus = max(cpus, res.cpus)
                time_s = max(time_s, res.time_s)
                memory = max(memory, res.memory_mb)
        return ResourceRequest(cpus=cpus, time_s=time_s or 3600.0,
                               memory_mb=memory or 64.0)

    @staticmethod
    def _required_software(ajo) -> list[tuple[str, str]]:
        seen: list[tuple[str, str]] = []
        for node in ajo.walk():
            req = getattr(node, "required_software", None)
            if callable(req):
                for item in req():
                    if item not in seen:
                        seen.append(item)
        return seen

    def status_plan(
        self, handle: "JobHandle | str", allow_stale: bool = True
    ) -> typing.Generator:
        """The job's status tree; a cached view marked stale during outages."""
        jmc, job_id = yield from self._target_plan(handle)
        tree = yield from jmc.status(job_id, allow_stale=allow_stale)
        return JobStatusView.from_dict(tree)

    def wait_plan(
        self,
        handle: "JobHandle | str",
        max_polls: int = 10_000,
        subscribe: bool = True,
    ) -> typing.Generator:
        """Wait until the job is terminal, riding out crash windows.

        The default path holds a completion-event subscription open at
        the gateway (renewed in long holds) instead of polling;
        ``subscribe=False`` forces the classic poll loop.  Either way,
        exhausting ``max_polls`` raises
        :class:`~repro.errors.WaitTimeout` (code ``api.wait_timeout``).

        A late-bound job may be *stolen* to another Vsite mid-wait (its
        original batch entry killed, a new consignment elsewhere); the
        loop follows the broker entry to wherever the job currently is.
        A subscription wait observes the steal's kill *instantly* —
        before the reclaim ack reaches the broker hub — so a "killed"
        answer for a live broker entry gets a short grace window for the
        entry to unbind and move before it is believed.
        """
        steal_grace = self.STEAL_GRACE_ROUNDS
        while True:
            entry = self._brokered.get(self._job_id(handle))
            if (
                entry is not None
                and not entry.state.is_terminal
                and not entry.job_id
            ):
                # Stolen, not yet rebound: let the dispatch tick run.
                yield self.sim.timeout(self.BROKER_REBIND_WAIT_S)
                continue
            jmc, job_id = yield from self._target_plan(handle)
            tree = yield from self._wait_gen(jmc, job_id, max_polls, subscribe)
            new_id, _ = self._resolve(handle)
            if new_id != job_id:
                steal_grace = self.STEAL_GRACE_ROUNDS
                continue  # moved while we were polling the old site
            if (
                entry is not None
                and not entry.state.is_terminal
                and not entry.job_id
            ):
                continue
            if (
                tree.get("status") == "killed"
                and entry is not None
                and not entry.state.is_terminal
                and steal_grace > 0
            ):
                steal_grace -= 1
                yield self.sim.timeout(self.BROKER_REBIND_WAIT_S)
                continue
            return JobStatusView.from_dict(tree)

    def _wait_gen(
        self,
        jmc: JobMonitorController,
        job_id: str,
        max_polls: int,
        subscribe: bool = True,
    ) -> typing.Generator:
        for attempt in range(self.WAIT_OUTAGE_RETRIES + 1):
            try:
                result = yield from jmc.wait_for_completion(
                    job_id, max_polls, subscribe=subscribe
                )
                return result
            except _TRANSPORT_ERRORS:
                if attempt >= self.WAIT_OUTAGE_RETRIES:
                    raise
                self._telemetry.metrics.counter("api.wait_retries").inc()
                yield self.sim.timeout(self.WAIT_RETRY_DELAY_S)

    def outcome_plan(self, handle: "JobHandle | str") -> typing.Generator:
        """The full Outcome tree (stdout/stderr included) of a finished job."""
        jmc, job_id = yield from self._target_plan(handle)
        result = yield from jmc.outcome(job_id)
        return result

    def cancel_plan(self, handle: "JobHandle | str") -> typing.Generator:
        """Abort the job wherever its parts currently are."""
        jmc, job_id = yield from self._target_plan(handle)
        result = yield from jmc.cancel(job_id)
        return result

    # -- the rest of the JMC, planned for completeness -----------------------
    def hold_plan(self, handle: "JobHandle | str") -> typing.Generator:
        jmc, job_id = yield from self._target_plan(handle)
        result = yield from jmc.hold(job_id)
        return result

    def resume_plan(self, handle: "JobHandle | str") -> typing.Generator:
        jmc, job_id = yield from self._target_plan(handle)
        result = yield from jmc.resume(job_id)
        return result

    def list_jobs_plan(self, usite: str | None = None) -> typing.Generator:
        """The user's jobs at one Usite (default: the home site)."""
        tier = yield from self._connect_plan(usite or self.usite)
        rows = yield from tier[2].list_jobs()
        return [JobListing.from_dict(row) for row in rows]

    def fetch_file_plan(
        self, handle: "JobHandle | str", path: str, save_as: str | None = None
    ) -> typing.Generator:
        """Bring one Uspace file back to the user's workstation."""
        jmc, job_id = yield from self._target_plan(handle)
        content = yield from jmc.fetch_file(
            job_id, path,
            workstation=self.user.workstation, save_as=save_as,
        )
        return content

    def dispose_plan(self, handle: "JobHandle | str") -> typing.Generator:
        jmc, job_id = yield from self._target_plan(handle)
        result = yield from jmc.dispose(job_id)
        return result

    def sleep_plan(self, seconds: float) -> typing.Generator:
        """Let simulated time pass (jobs run; nothing blocks on it)."""
        yield self.sim.timeout(seconds)

    @staticmethod
    def render(view: JobStatusView) -> str:
        """The JMC's colored status tree, from a typed view."""
        return JobMonitorController.render_tree(view.to_dict())
