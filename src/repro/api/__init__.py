"""The public facade package: one session API, two execution modes.

``repro.api`` re-exports the blocking surface unchanged —
:class:`GridSession` and :class:`JobHandle` live where they always did::

    from repro.api import GridSession, JobHandle

The package splits into:

- :mod:`repro.api.sync` — the blocking :class:`GridSession` (simkernel
  transport only; every verb drives the simulator to completion);
- :mod:`repro.api.aio` — :class:`AsyncGridSession` /
  :class:`AsyncJobHandle`, awaitable verbs over either transport
  backend (re-exported here for convenience);
- :mod:`repro.api._core` — the shared :class:`~repro.api._core.SessionCore`
  plan generators both facades drive, so behavior cannot drift.
"""

from repro.api._core import JobHandle
from repro.api.aio import AsyncGridSession, AsyncJobHandle
from repro.api.sync import GridSession

__all__ = ["AsyncGridSession", "AsyncJobHandle", "GridSession", "JobHandle"]
