"""The blocking facade: one session object for the whole user tier.

The paper's client tier is three applets (browser, JPA, JMC) that each
expose generator methods to be driven inside a simulator process.  That
is faithful to section 4.1 but awkward as a *library* surface: every
caller had to spell the connect handshake, hold three objects, and wrap
each call in ``sim.process``/``sim.run``.  :class:`GridSession` folds
the tier into four verbs —

    >>> session = GridSession(grid, "Alice Debye", "FZJ")
    >>> handle = session.submit(job)          # -> JobHandle
    >>> session.status(handle)                # -> JobStatusView
    >>> session.wait(handle)                  # -> terminal JobStatusView
    >>> session.outcome(handle)               # -> AJOOutcome tree

Every verb drives the matching plan generator of
:class:`~repro.api._core.SessionCore` to completion with
``sim.run(until=process)`` — which is why this facade only works on the
deterministic simkernel transport.  Pointing it at a realtime backend
raises :class:`~repro.net.errors.TransportMismatch` (``"aio"`` sends
need a running event loop); use
:class:`~repro.api.aio.AsyncGridSession` there instead.  Both facades
share the plan bodies, so their behavior is identical by construction.
"""

from __future__ import annotations

import typing

from repro.api._core import JobHandle, SessionCore
from repro.client.jpa import JobBuilder
from repro.faults.breaker import CircuitBreaker
from repro.net.errors import TransportMismatch
from repro.net.transport import TransportSpec
from repro.protocol.views import JobListing, JobStatusView

if typing.TYPE_CHECKING:
    from repro.grid.build import Grid, GridUser

__all__ = ["GridSession", "JobHandle"]


class GridSession(SessionCore):
    """A user's blocking connection to the grid, with resilience built in.

    Construction runs the full browser handshake (mutual SSL, applet
    download and signature check, resource-page fetch) to the named home
    Usite, then arms a circuit breaker on the protocol client.  All
    methods are *blocking* from the caller's point of view: each drives
    the underlying plan generator to completion inside the simulator,
    exactly like :meth:`repro.grid.build.Grid.connect_user`.
    """

    def __init__(
        self,
        grid: "Grid",
        user: "GridUser | str",
        usite: str,
        breaker: CircuitBreaker | None = None,
        failover: bool = True,
    ) -> None:
        if getattr(grid.network, "realtime", False):
            raise TransportMismatch(
                f"blocking GridSession cannot drive the realtime "
                f"{grid.network.kind!r} transport — its sends need a running "
                f"event loop; use repro.api.aio.AsyncGridSession"
            )
        super().__init__(grid, user, usite, breaker=breaker, failover=failover)
        self._run(self.setup_plan(), name="connect")

    @classmethod
    def connect(
        cls,
        grid: "Grid",
        user: "GridUser | str",
        usite: str,
        transport: "TransportSpec | str | None" = None,
        **kw,
    ) -> "GridSession":
        """Open a session, checking the grid runs the expected backend.

        ``transport`` names the backend the caller wrote their workload
        against; passing one that differs from what the grid was built
        with raises :class:`~repro.net.errors.TransportMismatch` rather
        than silently running on the wrong fabric.
        """
        if transport is not None:
            spec = TransportSpec.parse(transport)
            if spec.kind != grid.network.kind:
                raise TransportMismatch(
                    f"session requested the {spec.kind!r} transport but the "
                    f"grid was built with {grid.network.kind!r}; pass "
                    f"transport={spec.kind!r} to build_grid"
                )
        return cls(grid, user, usite, **kw)

    # -- plumbing ------------------------------------------------------------
    def _run(self, gen: typing.Generator, name: str):
        """Drive one plan generator to completion (blocking pattern)."""
        proc = self.sim.process(gen, name=f"api:{name}:{self.user.name}")
        return self.sim.run(until=proc)

    def _connect(self, usite: str):
        """Blocking tier lookup (kept for callers that held this seam)."""
        tier = self._tiers.get(usite)
        if tier is None:
            tier = self._run(self._connect_plan(usite), name=f"tier:{usite}")
        return tier

    # -- authoring -----------------------------------------------------------
    def new_job(
        self,
        name: str,
        vsite: str | None = None,
        usite: str | None = None,
        account_group: str = "",
    ) -> JobBuilder:
        """A builder bound for ``vsite`` (default: the home Usite's first)."""
        return self._run(
            self.new_job_plan(name, vsite, usite, account_group),
            name=f"new_job:{name}",
        )

    # -- the four verbs ------------------------------------------------------
    def submit(
        self, job: JobBuilder, workstation=None, broker: bool = False
    ) -> JobHandle:
        """Consign ``job``; see :meth:`SessionCore.submit_plan`."""
        return self._run(
            self.submit_plan(job, workstation, broker),
            name=f"submit:{job.ajo.name}",
        )

    def status(
        self, handle: "JobHandle | str", allow_stale: bool = True
    ) -> JobStatusView:
        """The job's status tree; a cached view marked stale during outages."""
        return self._run(self.status_plan(handle, allow_stale), name="status")

    def wait(
        self,
        handle: "JobHandle | str",
        max_polls: int = 10_000,
        subscribe: bool = True,
    ) -> JobStatusView:
        """Block until the job is terminal; see :meth:`SessionCore.wait_plan`."""
        return self._run(
            self.wait_plan(handle, max_polls, subscribe), name="wait"
        )

    def outcome(self, handle: "JobHandle | str"):
        """The full Outcome tree (stdout/stderr included) of a finished job."""
        return self._run(self.outcome_plan(handle), name="outcome")

    def cancel(self, handle: "JobHandle | str") -> dict:
        """Abort the job wherever its parts currently are."""
        return self._run(self.cancel_plan(handle), name="cancel")

    # -- the rest of the JMC, facaded for completeness -----------------------
    def hold(self, handle: "JobHandle | str") -> dict:
        return self._run(self.hold_plan(handle), name="hold")

    def resume(self, handle: "JobHandle | str") -> dict:
        return self._run(self.resume_plan(handle), name="resume")

    def list_jobs(self, usite: str | None = None) -> list[JobListing]:
        """The user's jobs at one Usite (default: the home site)."""
        return self._run(self.list_jobs_plan(usite), name="list")

    def fetch_file(
        self, handle: "JobHandle | str", path: str, save_as: str | None = None
    ) -> bytes:
        """Bring one Uspace file back to the user's workstation."""
        return self._run(self.fetch_file_plan(handle, path, save_as), name="fetch")

    def dispose(self, handle: "JobHandle | str") -> dict:
        return self._run(self.dispose_plan(handle), name="dispose")

    # -- simulation helper ---------------------------------------------------
    def advance(self, seconds: float) -> None:
        """Let simulated time pass (jobs run; nothing blocks on it)."""
        self.sim.run(until=self.sim.now + seconds)

    # -- checkpointing --------------------------------------------------------
    def snapshot(self):
        """Checkpoint the whole grid (see :meth:`repro.grid.Grid.snapshot`).

        Take it at a quiescent point — after :meth:`wait` /
        :meth:`advance` returned with no work pending — if the restored
        run must continue byte-identically.
        """
        return self.grid.snapshot()
