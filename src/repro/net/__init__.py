"""Simulated wide-area network between UNICORE components.

The paper's components talk over the Internet (https between browser,
gateway, and peer NJSs; IP sockets across the firewall).  This package
models that fabric on the simulation kernel:

- :mod:`repro.net.transport` — hosts with mailboxes, point-to-point links
  with latency, bandwidth, FIFO serialization, and Bernoulli loss;
- :mod:`repro.net.https` — https-style channels over the transport:
  certificate handshake round-trips plus per-record framing overhead
  (what makes bulk NJS-to-NJS transfer slow, experiment E5), and a
  direct-socket channel as the faster alternative the paper says
  "UNICORE is working on";
- :mod:`repro.net.stream` — the streaming data plane: binary frames
  that carry file bytes raw and chunked, so bulk transfers interleave
  with control messages and resume after a lost chunk.

All randomness (loss) derives from a named RNG stream, so runs are
deterministic.
"""

from repro.net.errors import ConnectionLost, FrameError, HostUnreachable, NetworkError
from repro.net.transport import Host, Link, Message, Network
from repro.net.https import DirectChannel, HttpsChannel, establish_https
from repro.net.stream import (
    Frame,
    FrameType,
    OpenInfo,
    StreamReassembler,
    StreamSender,
    decode_frame,
    encode_frame,
)

__all__ = [
    "ConnectionLost",
    "DirectChannel",
    "Frame",
    "FrameError",
    "FrameType",
    "Host",
    "HostUnreachable",
    "HttpsChannel",
    "Link",
    "Message",
    "Network",
    "NetworkError",
    "OpenInfo",
    "StreamReassembler",
    "StreamSender",
    "decode_frame",
    "encode_frame",
    "establish_https",
]
