"""The network layer: one wire protocol over two interchangeable fabrics.

The paper's components talk over the Internet (https between browser,
gateway, and peer NJSs; IP sockets across the firewall).  This package
carries that traffic behind a pluggable transport interface:

- :mod:`repro.net.transport` — the backend-neutral :class:`Transport`
  surface plus :class:`TransportSpec`/registry for choosing a fabric;
- :mod:`repro.net.sim_transport` — the deterministic simkernel backend:
  hosts with mailboxes, point-to-point links with latency, bandwidth,
  FIFO serialization, and Bernoulli loss (every test and deterministic
  benchmark runs here);
- :mod:`repro.net.aio_transport` — the real ``asyncio`` TCP backend:
  WAN edges carry the same messages as length-prefixed frames over
  actual sockets (:mod:`repro.net.wire`), measured in wall clock;
- :mod:`repro.net.https` — https-style channels over either fabric:
  certificate handshake round-trips plus per-record framing overhead
  (what makes bulk NJS-to-NJS transfer slow, experiment E5), and a
  direct-socket channel as the faster alternative the paper says
  "UNICORE is working on";
- :mod:`repro.net.stream` — the streaming data plane: binary frames
  that carry file bytes raw and chunked, so bulk transfers interleave
  with control messages and resume after a lost chunk.

All simulated randomness (loss) derives from a named RNG stream, so
sim-backend runs are deterministic.
"""

from repro.net.errors import (
    ConnectionLost,
    ConnectionRefused,
    ConnectionReset,
    FrameDecodeError,
    FrameError,
    HostUnreachable,
    NetworkError,
    TransportMismatch,
)
from repro.net.transport import (
    Transport,
    TransportSpec,
    available_transports,
    register_transport,
    resolve_transport,
)
from repro.net.sim_transport import Host, Link, Message, Network
from repro.net.https import DirectChannel, HttpsChannel, establish_https
from repro.net.stream import (
    Frame,
    FrameType,
    OpenInfo,
    StreamReassembler,
    StreamSender,
    decode_frame,
    encode_frame,
)

__all__ = [
    "ConnectionLost",
    "ConnectionRefused",
    "ConnectionReset",
    "DirectChannel",
    "Frame",
    "FrameDecodeError",
    "FrameError",
    "FrameType",
    "Host",
    "HostUnreachable",
    "HttpsChannel",
    "Link",
    "Message",
    "Network",
    "NetworkError",
    "OpenInfo",
    "StreamReassembler",
    "StreamSender",
    "Transport",
    "TransportMismatch",
    "TransportSpec",
    "available_transports",
    "decode_frame",
    "encode_frame",
    "establish_https",
    "register_transport",
    "resolve_transport",
]
