"""The deterministic simkernel transport backend.

A :class:`Network` owns named :class:`Host`\\ s and directed
:class:`Link`\\ s.  Sending a message schedules its delivery after
``queueing + size/bandwidth + latency`` simulated seconds, where queueing
models FIFO serialization on the link (one transmission at a time, the
behaviour that makes bulk transfers contend).  Each message is lost with
the link's loss probability, drawn from a deterministic per-link stream;
a lost message fails the sender's delivery event at the time the receiver
would have noticed (one timeout interval), so protocols can react.

This module is the ``"sim"`` implementation of the
:class:`~repro.net.transport.Transport` interface — the backend every
test, fault scenario, and deterministic benchmark runs on.  The real
``asyncio`` TCP backend lives in :mod:`repro.net.aio_transport`; both
are selected through :class:`~repro.net.transport.TransportSpec`.
(Historically this module *was* ``repro.net.transport``; the old import
path still resolves through a deprecation shim there.)
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field
from itertools import count

from repro.net.errors import ConnectionLost, HostUnreachable, NetworkError
from repro.net.transport import Transport
from repro.simkernel import Event, SimQueue, Simulator, Timeout
from repro.simkernel.rng import derive_rng

__all__ = ["Message", "Host", "Link", "Network"]

#: How long a sender waits before concluding a message was lost.
DEFAULT_TIMEOUT = 30.0


@dataclass(slots=True)
class Message:
    """One unit in flight: opaque payload plus explicit wire size."""

    sender: str
    recipient: str
    payload: object
    size_bytes: int
    #: Assigned by the owning :class:`Network` so ids (and the
    #: ``delivery:{msg_id}`` event names) are deterministic per network,
    #: independent of what else ran earlier in the process.
    msg_id: int = 0
    #: Free-form channel label ("https", "raw") for instrumentation.
    channel: str = "raw"


class Host:
    """A named machine with an inbox that server processes consume."""

    def __init__(self, sim: Simulator, name: str) -> None:
        self.sim = sim
        self.name = name
        self.inbox = SimQueue(sim)
        #: Instrumentation: (bytes, messages) received.
        self.received_bytes = 0
        self.received_messages = 0

    def receive(self) -> Event:
        """Event firing with the next inbound :class:`Message`."""
        return self.inbox.pop()

    def _deliver(self, message: Message) -> None:
        self.received_bytes += message.size_bytes
        self.received_messages += 1
        self.inbox.push(message)

    def __repr__(self) -> str:
        return f"<Host {self.name}>"


class Link:
    """A directed link with latency, bandwidth, FIFO queueing, and loss."""

    def __init__(
        self,
        sim: Simulator,
        src: str,
        dst: str,
        latency_s: float,
        bandwidth_Bps: float,
        loss_probability: float,
        rng,
    ) -> None:
        if latency_s < 0:
            raise NetworkError("latency must be non-negative")
        if bandwidth_Bps <= 0:
            raise NetworkError("bandwidth must be positive")
        if not 0.0 <= loss_probability < 1.0:
            raise NetworkError("loss probability must be in [0, 1)")
        self.sim = sim
        self.src = src
        self.dst = dst
        self.latency_s = latency_s
        self.bandwidth_Bps = bandwidth_Bps
        self.loss_probability = loss_probability
        self._rng = rng
        self._busy_until = 0.0
        #: Instrumentation.
        self.bytes_sent = 0
        self.messages_sent = 0
        self.messages_lost = 0

    def transmission_delay(self, size_bytes: int) -> float:
        return size_bytes / self.bandwidth_Bps

    def schedule(self, message: Message, deliver: typing.Callable[[Message], None]) -> Event:
        """Schedule delivery; returns the sender's delivery event.

        The event succeeds at delivery time, or fails with
        :class:`ConnectionLost` after a timeout if the message is lost.
        """
        now = self.sim.now
        tx = self.transmission_delay(message.size_bytes)
        start = max(now, self._busy_until)
        self._busy_until = start + tx
        arrival = start + tx + self.latency_s

        self.bytes_sent += message.size_bytes
        self.messages_sent += 1

        lost = self.loss_probability > 0 and self._rng.random() < self.loss_probability
        if lost:
            ev = self.sim.event(name=f"delivery:{message.msg_id}")
            self.messages_lost += 1
            self.sim.schedule_callback(
                (arrival - now) + DEFAULT_TIMEOUT,
                lambda: ev.fail(
                    ConnectionLost(
                        f"message {message.msg_id} {self.src}->{self.dst} lost"
                    )
                ),
            )
            return ev
        # Delivered path: ONE queue entry per message.  The delivery event
        # is scheduled directly at the arrival time with the inbox push as
        # its first callback, so the receiver sees the message before any
        # waiting sender resumes — same ordering as a separate callback,
        # at half the event-queue traffic.
        ev = Timeout(
            self.sim, arrival - now, value=message,
            name=f"delivery:{message.msg_id}",
        )
        assert ev.callbacks is not None
        ev.callbacks.append(lambda _ev: deliver(message))
        return ev


class Network(Transport):
    """The fabric: hosts plus links, with deterministic loss streams."""

    kind = "sim"
    realtime = False

    def __init__(self, sim: Simulator, seed: int = 0) -> None:
        self.sim = sim
        self.seed = seed
        self._hosts: dict[str, Host] = {}
        self._links: dict[tuple[str, str], Link] = {}
        self._msg_seq = count(1)

    # -- topology -------------------------------------------------------------
    def add_host(self, name: str) -> Host:
        if name in self._hosts:
            raise NetworkError(f"duplicate host {name!r}")
        host = Host(self.sim, name)
        self._hosts[name] = host
        return host

    def host(self, name: str) -> Host:
        try:
            return self._hosts[name]
        except KeyError:
            raise HostUnreachable(f"unknown host {name!r}") from None

    def link(
        self,
        src: str,
        dst: str,
        latency_s: float = 0.010,
        bandwidth_Bps: float = 1_250_000.0,  # 10 Mbit/s: 1999-era WAN
        loss_probability: float = 0.0,
        symmetric: bool = True,
    ) -> None:
        """Create a link (both directions unless ``symmetric=False``)."""
        for h in (src, dst):
            self.host(h)  # raises if unknown
        pairs = [(src, dst)] + ([(dst, src)] if symmetric else [])
        for a, b in pairs:
            self._links[(a, b)] = Link(
                self.sim,
                a,
                b,
                latency_s=latency_s,
                bandwidth_Bps=bandwidth_Bps,
                loss_probability=loss_probability,
                rng=derive_rng(self.seed, f"link:{a}->{b}"),
            )

    def get_link(self, src: str, dst: str) -> Link:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise HostUnreachable(f"no link {src} -> {dst}") from None

    # -- snapshot support ------------------------------------------------------
    def state_cursors(self) -> dict[str, object]:
        """Message-id counter plus every link's loss-RNG state.

        Restoring these into an identically built network makes the
        resumed run draw the exact message ids and loss decisions the
        uninterrupted run would have — the property grid snapshots rely
        on for byte-identical outcomes.
        """
        next_id = next(self._msg_seq)
        self._msg_seq = count(next_id)  # undo the peek
        return {
            "msg_seq": next_id,
            "links": {
                f"{a}->{b}": link._rng.bit_generator.state
                for (a, b), link in sorted(self._links.items())
            },
        }

    def restore_cursors(self, cursors: dict[str, object]) -> None:
        self._msg_seq = count(int(typing.cast(int, cursors["msg_seq"])))
        states = typing.cast(dict, cursors.get("links", {}))
        for (a, b), link in self._links.items():
            state = states.get(f"{a}->{b}")
            if state is not None:
                link._rng.bit_generator.state = state

    # -- traffic ---------------------------------------------------------------
    def send(
        self,
        src: str,
        dst: str,
        payload: object,
        size_bytes: int,
        channel: str = "raw",
        deliver: bool = True,
    ) -> Event:
        """Send; returns the delivery event (fails on loss after timeout).

        With ``deliver=False`` the message still occupies the link and
        counts in statistics but is not pushed into the destination inbox
        (used for handshake flights the peer's logic handles inline).
        """
        if size_bytes < 0:
            raise NetworkError("message size must be non-negative")
        destination = self.host(dst)
        link = self.get_link(src, dst)
        message = Message(
            sender=src, recipient=dst, payload=payload,
            size_bytes=size_bytes, msg_id=next(self._msg_seq),
            channel=channel,
        )
        sink = destination._deliver if deliver else (lambda _message: None)
        return link.schedule(message, sink)

    @property
    def hosts(self) -> list[str]:
        return sorted(self._hosts)

    def total_bytes_sent(self) -> int:
        return sum(link.bytes_sent for link in self._links.values())

    def total_messages_lost(self) -> int:
        return sum(link.messages_lost for link in self._links.values())
