"""Https-style channels over the simulated transport.

The paper routes *everything* over https: browser-to-gateway, gateway-to-
NJS-to-peer-gateway.  Https costs show up in three places this module
models explicitly:

1. **Handshake round trips** — :data:`~repro.security.ssl.HANDSHAKE_ROUND_TRIPS`
   small-message exchanges before any payload flows, plus the actual
   certificate validation (:func:`~repro.security.ssl.ssl_handshake`).
2. **Record framing** — every 16 KiB record carries
   :data:`~repro.security.ssl.RECORD_OVERHEAD` bytes of header + MAC.
3. **Per-record processing** — sealing and opening records costs CPU,
   which caps effective throughput regardless of link speed.  This is the
   mechanism behind section 5.6's "this solution has disadvantages with
   respect to transfer rates especially for huge data sets".

:class:`DirectChannel` is the unframed socket alternative the paper says
UNICORE was working on — one setup round trip, no per-record costs.
"""

from __future__ import annotations

import typing

from repro.net.sim_transport import Network
from repro.security.ca import CertificateStore
from repro.security.rsa import RSAKeyPair
from repro.security.ssl import (
    HANDSHAKE_ROUND_TRIPS,
    SSLSession,
    ssl_handshake,
)
from repro.security.x509 import Certificate
from repro.simkernel import Event, Process, Simulator

__all__ = ["HttpsChannel", "DirectChannel", "establish_https"]

#: Bytes of a handshake message (hello / certificate / finished flights).
HANDSHAKE_MESSAGE_BYTES = 1500

#: Seconds of CPU to seal or open one 16 KiB record (1999-era hardware).
DEFAULT_PER_RECORD_CPU_S = 0.002


class HttpsChannel:
    """An established mutually-authenticated channel between two hosts."""

    def __init__(
        self,
        sim: Simulator,
        network: Network,
        client_host: str,
        server_host: str,
        session: SSLSession,
        per_record_cpu_s: float = DEFAULT_PER_RECORD_CPU_S,
    ) -> None:
        self.sim = sim
        self.network = network
        self.client_host = client_host
        self.server_host = server_host
        self.session = session
        self.per_record_cpu_s = per_record_cpu_s
        #: Instrumentation: payload vs wire bytes pushed through this channel.
        self.payload_bytes = 0
        self.wire_bytes = 0

    def send(
        self, payload: object, size_bytes: int, to_server: bool = True,
        deliver: bool = True,
    ) -> Process:
        """Send ``payload`` through the channel; returns a waitable process.

        The process completes when the peer has received *and opened* all
        records; it fails with :class:`~repro.net.errors.ConnectionLost`
        if the transport drops the message.  The process comes pre-defused
        so fire-and-forget sends (server replies) do not crash the
        simulation when lost — a waiter that ``yield``\\ s it still sees
        the exception.
        """
        process = self.sim.process(
            self._send_proc(payload, size_bytes, to_server, deliver),
            name=f"https-send:{size_bytes}B",
        )
        process.defuse()
        return process

    def _send_proc(
        self, payload: object, size_bytes: int, to_server: bool, deliver: bool
    ) -> typing.Generator[Event, object, object]:
        records = SSLSession.record_count(size_bytes)
        wire = SSLSession.wire_bytes(size_bytes)
        src, dst = (
            (self.client_host, self.server_host)
            if to_server
            else (self.server_host, self.client_host)
        )
        # Seal (sender CPU) and open (receiver CPU) all records.  Both
        # ends' record processing is charged as one timer up front: the
        # total elapsed time from send to completion is unchanged, and
        # folding the two waits into a single event halves the https
        # event-queue cost on the million-job hot path.
        yield self.sim.timeout(2 * records * self.per_record_cpu_s)
        yield self.network.send(
            src, dst, payload, wire, channel="https", deliver=deliver
        )
        self.payload_bytes += size_bytes
        self.wire_bytes += wire
        return payload


class DirectChannel:
    """The unframed high-throughput alternative (section 5.6 outlook).

    No certificate handshake, no record framing, no per-record CPU — just
    the raw link.  Benchmarks compare this against :class:`HttpsChannel`.
    """

    def __init__(
        self, sim: Simulator, network: Network, client_host: str, server_host: str
    ) -> None:
        self.sim = sim
        self.network = network
        self.client_host = client_host
        self.server_host = server_host
        self.payload_bytes = 0

    @classmethod
    def establish(
        cls, sim: Simulator, network: Network, client_host: str, server_host: str
    ) -> typing.Generator[Event, object, "DirectChannel"]:
        """One setup round trip, then the channel is ready (yield from)."""
        yield network.send(
            client_host, server_host, ("syn",), 64, channel="direct", deliver=False
        )
        yield network.send(
            server_host, client_host, ("ack",), 64, channel="direct", deliver=False
        )
        return cls(sim, network, client_host, server_host)

    def send(
        self, payload: object, size_bytes: int, to_server: bool = True,
        deliver: bool = True,
    ) -> Event:
        src, dst = (
            (self.client_host, self.server_host)
            if to_server
            else (self.server_host, self.client_host)
        )
        self.payload_bytes += size_bytes
        return self.network.send(
            src, dst, payload, size_bytes, channel="direct", deliver=deliver
        )


def establish_https(
    sim: Simulator,
    network: Network,
    client_host: str,
    server_host: str,
    *,
    client_cert: Certificate,
    client_key: RSAKeyPair,
    server_cert: Certificate,
    server_key: RSAKeyPair,
    client_store: CertificateStore,
    server_store: CertificateStore,
    per_record_cpu_s: float = DEFAULT_PER_RECORD_CPU_S,
) -> typing.Generator[Event, object, HttpsChannel]:
    """Full https establishment as a sub-process (use with ``yield from``).

    Performs the handshake round trips on the wire, then the mutual
    certificate validation of section 4.1.  Raises
    :class:`~repro.security.errors.AuthenticationError` on rejection and
    :class:`~repro.net.errors.ConnectionLost` if a handshake flight is
    dropped.
    """
    for i in range(HANDSHAKE_ROUND_TRIPS):
        yield network.send(
            client_host, server_host, ("hs", i), HANDSHAKE_MESSAGE_BYTES,
            channel="https-handshake", deliver=False,
        )
        yield network.send(
            server_host, client_host, ("hs-ack", i), HANDSHAKE_MESSAGE_BYTES,
            channel="https-handshake", deliver=False,
        )
    session = ssl_handshake(
        client_cert=client_cert,
        client_key=client_key,
        server_cert=server_cert,
        server_key=server_key,
        client_store=client_store,
        server_store=server_store,
        now=sim.now,
    )
    return HttpsChannel(
        sim, network, client_host, server_host, session,
        per_record_cpu_s=per_record_cpu_s,
    )
