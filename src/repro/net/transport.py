"""The pluggable transport interface: one protocol, two fabrics.

Every message in the reproduction — control-plane
:class:`~repro.protocol.messages.Request`/``Reply`` envelopes, data-plane
stream frames, handshake flights — crosses tiers through one call,
``transport.send(src, dst, payload, size_bytes, ...)``.  This module
defines that surface as an abstract :class:`Transport` so the fabric
underneath is interchangeable:

``"sim"``
    :class:`repro.net.sim_transport.Network` — the deterministic
    simkernel backend: virtual clock, modeled latency/bandwidth/loss.
    Every test, fault scenario, and deterministic benchmark runs here.

``"aio"``
    :class:`repro.net.aio_transport.AioTransport` — a real ``asyncio``
    TCP backend: WAN edges (user workstation ↔ gateway) carry the same
    wire messages as length-prefixed frames over real sockets, so the
    stack can serve actual concurrent clients and be measured in
    wall-clock msgs/s and MB/s.

Backend choice is one argument end to end:
``build_grid(..., transport="aio")`` at construction, and the matching
session facade (:class:`repro.api.GridSession` for ``sim``,
:class:`repro.api.aio.AsyncGridSession` for either) at use.

.. note::
   The simkernel classes (``Message``, ``Host``, ``Link``, ``Network``,
   ``DEFAULT_TIMEOUT``) historically lived in this module; they moved to
   :mod:`repro.net.sim_transport` when the interface was factored out.
   The old names still resolve here through a warn-once PEP 562 shim.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass, field

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel import Event, Simulator

__all__ = [
    "Transport",
    "TransportSpec",
    "available_transports",
    "register_transport",
    "resolve_transport",
]


class Transport:
    """The message fabric between UNICORE components.

    Concrete backends provide named hosts with inboxes, point-to-point
    reachability, and :meth:`send`.  Server processes and protocol
    clients are written against this surface only, so swapping the
    fabric never touches their logic.
    """

    #: Registry name of the backend (``"sim"``, ``"aio"``).
    kind: str = "abstract"
    #: True when sends involve real I/O that must be pumped by an event
    #: loop.  The blocking :class:`~repro.api.GridSession` facade refuses
    #: realtime transports; :class:`~repro.api.aio.AsyncGridSession`
    #: drives either.
    realtime: bool = False

    # -- topology -------------------------------------------------------------
    # Host and link objects are backend-specific (the simkernel Host
    # carries an inbox Store; the aio backend hands out socket-backed
    # peers), so the interface types them as Any.
    def add_host(self, name: str) -> typing.Any:
        raise NotImplementedError

    def host(self, name: str) -> typing.Any:
        raise NotImplementedError

    def link(
        self,
        src: str,
        dst: str,
        latency_s: float = 0.010,
        bandwidth_Bps: float = 1_250_000.0,
        loss_probability: float = 0.0,
        symmetric: bool = True,
    ) -> None:
        raise NotImplementedError

    def get_link(self, src: str, dst: str) -> typing.Any:
        raise NotImplementedError

    def mark_wan(self, name: str) -> None:
        """Declare ``name`` a WAN-side (client) host.

        Realtime backends route traffic between a WAN host and the
        server tier over real sockets; the simkernel backend models
        every edge identically, so this is a no-op there.
        """

    # -- traffic ---------------------------------------------------------------
    def send(
        self,
        src: str,
        dst: str,
        payload: object,
        size_bytes: int,
        channel: str = "raw",
        deliver: bool = True,
    ) -> "Event":
        """Send; returns the delivery event (fails on loss/reset)."""
        raise NotImplementedError

    # -- snapshot support -----------------------------------------------------
    def state_cursors(self) -> dict[str, object]:
        """Internal counters and RNG cursors, for grid snapshots.

        A restored grid must continue the exact message-id and loss-draw
        sequences of the original, so the simkernel backend exposes its
        cursors here.  Realtime backends have no replayable cursor state;
        the base implementation refuses with
        :class:`~repro.storage.errors.SnapshotError`.
        """
        from repro.storage.errors import SnapshotError

        raise SnapshotError(
            f"transport backend {self.kind!r} does not support snapshots"
        )

    def restore_cursors(self, cursors: dict[str, object]) -> None:
        """Restore the cursors captured by :meth:`state_cursors`."""
        from repro.storage.errors import SnapshotError

        raise SnapshotError(
            f"transport backend {self.kind!r} does not support snapshots"
        )

    # -- instrumentation ------------------------------------------------------
    @property
    def hosts(self) -> list[str]:
        raise NotImplementedError

    def total_bytes_sent(self) -> int:
        raise NotImplementedError

    def total_messages_lost(self) -> int:
        raise NotImplementedError


@dataclass(frozen=True)
class TransportSpec:
    """A declarative backend choice: registry name plus options.

    Accepted anywhere a transport is chosen
    (``build_grid(transport=...)``, ``GridSession.connect(...)``,
    ``AsyncGridSession.connect(...)``) in any of three spellings::

        build_grid(sites)                                   # default "sim"
        build_grid(sites, transport="aio")                  # by name
        build_grid(sites, transport=TransportSpec("aio", {"port": 9423}))
    """

    kind: str = "sim"
    options: typing.Mapping[str, object] = field(default_factory=dict)

    @classmethod
    def parse(cls, value: "TransportSpec | str | None") -> "TransportSpec":
        """Coerce ``None`` / a backend name / a spec into a spec."""
        if value is None:
            return cls()
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            return cls(kind=value)
        raise TypeError(
            f"transport must be a TransportSpec, backend name, or None; "
            f"got {value!r}"
        )


#: Backend registry: name -> factory(sim, seed, **options) -> Transport.
_REGISTRY: dict[str, typing.Callable[..., Transport]] = {}


def register_transport(
    kind: str, factory: typing.Callable[..., Transport]
) -> None:
    """Register a transport backend under ``kind`` (last wins)."""
    _REGISTRY[kind] = factory


def available_transports() -> list[str]:
    return sorted(_REGISTRY)


def resolve_transport(
    spec: "TransportSpec | str | None", sim: "Simulator", seed: int = 0
) -> Transport:
    """Instantiate the backend a spec names.

    Raises :class:`~repro.net.errors.NetworkError` for an unknown kind,
    listing what is registered.
    """
    from repro.net.errors import NetworkError

    parsed = TransportSpec.parse(spec)
    factory = _REGISTRY.get(parsed.kind)
    if factory is None:
        raise NetworkError(
            f"unknown transport backend {parsed.kind!r}; "
            f"registered: {', '.join(available_transports()) or '(none)'}"
        )
    return factory(sim, seed, **dict(parsed.options))


def _sim_factory(sim: "Simulator", seed: int = 0, **options: object) -> Transport:
    from repro.net.sim_transport import Network

    return Network(sim, seed=seed, **typing.cast("dict[str, typing.Any]", options))


def _aio_factory(sim: "Simulator", seed: int = 0, **options: object) -> Transport:
    from repro.net.aio_transport import AioTransport

    return AioTransport(sim, seed=seed, **typing.cast("dict[str, typing.Any]", options))


register_transport("sim", _sim_factory)
register_transport("aio", _aio_factory)


# -- PEP 562 deprecation shim ------------------------------------------------
# The simkernel backend's classes lived here before the interface split.
_MOVED = ("Message", "Host", "Link", "Network", "DEFAULT_TIMEOUT")

from repro._compat import deprecated_module_attr  # noqa: E402

__getattr__, __dir__ = deprecated_module_attr(
    __name__, globals(), {name: "repro.net.sim_transport" for name in _MOVED},
    hint="(or repro.net) — this module now holds the backend-neutral "
         "Transport interface",
)
