"""The streaming data plane: binary frames for bulk transfers.

The paper tunnels every byte — control messages *and* file contents —
through the same https request/reply path (section 5.6), which it flags
as "slow for huge data sets".  This module is the wire half of the fix:
a small binary frame codec that carries file bytes raw (no base64), in
chunks, so bulk data interleaves with control messages on the FIFO
links instead of head-of-line-blocking them, and a lost chunk costs one
retransmission instead of the whole payload.

Frame layout (network byte order, 24-byte header)::

    0      2      3      4            12      16      20      24
    +------+------+------+------------+-------+-------+-------+----
    | "US" | ver  | type | stream_id  | seq   | len   | crc32 | payload
    +------+------+------+------------+-------+-------+-------+----
      2 B    u8     u8       u64         u32     u32     u32

``type`` is OPEN (1), DATA (2), or ACK (3).  An OPEN frame's payload is
the :class:`OpenInfo` preamble — total size, chunking, whole-payload
checksum, and a JSON context blob naming what the stream *is* (its kind,
job ids, destination path).  DATA frames carry raw chunk bytes; ``seq``
is the chunk index.  ACK frames are available to protocols that need
explicit cumulative acknowledgement (``seq`` = next expected chunk);
the simulated transport's per-message delivery events already provide
the implicit per-chunk acknowledgement the senders in this repo use.

Version is negotiated trivially: a decoder raises :class:`FrameError`
on any version it does not speak, and the control-plane error path
reports that to the sender (see DESIGN.md, "Wire formats").
"""

from __future__ import annotations

import json
import struct
import typing
import zlib
from dataclasses import dataclass, field

from repro.net.errors import FrameError

__all__ = [
    "FRAME_HEADER_BYTES",
    "FRAME_VERSION",
    "Frame",
    "FrameType",
    "OpenInfo",
    "StreamReassembler",
    "StreamSender",
    "chunk_payload",
    "decode_frame",
    "encode_frame",
]

#: Frame magic: every frame starts with these two bytes.
FRAME_MAGIC = b"US"

#: The one frame-format version this codec speaks.
FRAME_VERSION = 1

_HEADER = struct.Struct("!2sBBQIII")

#: Bytes of framing added to every chunk on the wire.
FRAME_HEADER_BYTES = _HEADER.size  # 24

_OPEN_FIXED = struct.Struct("!QIIII")  # total, chunk, count, crc, ctx_len

_U32_MAX = 0xFFFFFFFF
_U64_MAX = 0xFFFFFFFFFFFFFFFF


class FrameType:
    """Frame type tags."""

    OPEN = 1
    DATA = 2
    ACK = 3

    ALL = (OPEN, DATA, ACK)


@dataclass(slots=True, frozen=True)
class Frame:
    """One decoded frame: header fields plus raw payload bytes."""

    stream_id: int
    seq: int
    payload: bytes = b""
    ftype: int = FrameType.DATA
    version: int = FRAME_VERSION


def encode_frame(frame: Frame) -> bytes:
    """Serialize a frame: 24-byte header + raw payload."""
    if frame.ftype not in FrameType.ALL:
        raise FrameError(f"unknown frame type {frame.ftype!r}")
    if not 0 <= frame.stream_id <= _U64_MAX:
        raise FrameError(f"stream id {frame.stream_id} out of u64 range")
    if not 0 <= frame.seq <= _U32_MAX:
        raise FrameError(f"sequence number {frame.seq} out of u32 range")
    if len(frame.payload) > _U32_MAX:
        raise FrameError("frame payload exceeds u32 length")
    header = _HEADER.pack(
        FRAME_MAGIC,
        frame.version,
        frame.ftype,
        frame.stream_id,
        frame.seq,
        len(frame.payload),
        zlib.crc32(frame.payload),
    )
    return header + frame.payload


def decode_frame(raw: bytes) -> Frame:
    """Parse a frame; raises :class:`FrameError` on any malformation."""
    if len(raw) < FRAME_HEADER_BYTES:
        raise FrameError(
            f"truncated frame: {len(raw)} bytes < {FRAME_HEADER_BYTES}-byte header"
        )
    magic, version, ftype, stream_id, seq, length, crc = _HEADER.unpack_from(raw)
    if magic != FRAME_MAGIC:
        raise FrameError(f"bad frame magic {magic!r}")
    if version != FRAME_VERSION:
        raise FrameError(
            f"unsupported frame version {version} (this codec speaks "
            f"{FRAME_VERSION})"
        )
    if ftype not in FrameType.ALL:
        raise FrameError(f"unknown frame type {ftype}")
    payload = raw[FRAME_HEADER_BYTES:]
    if len(payload) != length:
        raise FrameError(
            f"frame length mismatch: header says {length}, got {len(payload)}"
        )
    if zlib.crc32(payload) != crc:
        raise FrameError(f"frame checksum mismatch on stream {stream_id} seq {seq}")
    return Frame(
        stream_id=stream_id, seq=seq, payload=payload, ftype=ftype,
        version=version,
    )


@dataclass(slots=True, frozen=True)
class OpenInfo:
    """The OPEN frame's preamble: what the stream carries and how."""

    total_size: int
    chunk_bytes: int
    chunk_count: int
    total_crc32: int
    #: Application context: stream kind, job/correlation ids, paths.
    context: dict = field(default_factory=dict)

    def encode(self) -> bytes:
        blob = json.dumps(
            self.context, sort_keys=True, separators=(",", ":")
        ).encode()
        return _OPEN_FIXED.pack(
            self.total_size, self.chunk_bytes, self.chunk_count,
            self.total_crc32, len(blob),
        ) + blob

    @classmethod
    def decode(cls, raw: bytes) -> "OpenInfo":
        if len(raw) < _OPEN_FIXED.size:
            raise FrameError("truncated OPEN preamble")
        total, chunk, count, crc, ctx_len = _OPEN_FIXED.unpack_from(raw)
        blob = raw[_OPEN_FIXED.size:]
        if len(blob) != ctx_len:
            raise FrameError("OPEN context length mismatch")
        try:
            context = json.loads(blob) if blob else {}
        except ValueError as err:
            raise FrameError(f"OPEN context is not valid JSON: {err}") from err
        if not isinstance(context, dict):
            raise FrameError("OPEN context must be a JSON object")
        return cls(
            total_size=total, chunk_bytes=chunk, chunk_count=count,
            total_crc32=crc, context=context,
        )


def chunk_payload(data: bytes, chunk_bytes: int) -> list[bytes]:
    """Split ``data`` into chunks of at most ``chunk_bytes``."""
    if chunk_bytes <= 0:
        raise FrameError(f"chunk size must be positive, got {chunk_bytes}")
    return [data[i:i + chunk_bytes] for i in range(0, len(data), chunk_bytes)]


class StreamSender:
    """Frames one payload as an OPEN preamble plus DATA chunks.

    The sender is transport-agnostic: iterate :meth:`frames` and push
    each through whatever carries bytes (an https channel, an NJS-NJS
    route).  Retransmitting a frame is just re-sending the same
    :class:`Frame` — frames are self-describing and receivers tolerate
    duplicates, which is what makes resume-from-last-acked-chunk
    trivial for the callers.
    """

    def __init__(
        self, stream_id: int, data: bytes, chunk_bytes: int,
        context: dict | None = None,
    ) -> None:
        self.stream_id = stream_id
        self.data = data
        self.chunks = chunk_payload(data, chunk_bytes)
        self.open_info = OpenInfo(
            total_size=len(data),
            chunk_bytes=chunk_bytes,
            chunk_count=len(self.chunks),
            total_crc32=zlib.crc32(data),
            context=dict(context or {}),
        )

    @property
    def frame_count(self) -> int:
        return 1 + len(self.chunks)

    def open_frame(self) -> Frame:
        return Frame(
            stream_id=self.stream_id, seq=0,
            payload=self.open_info.encode(), ftype=FrameType.OPEN,
        )

    def data_frame(self, seq: int) -> Frame:
        return Frame(
            stream_id=self.stream_id, seq=seq, payload=self.chunks[seq],
            ftype=FrameType.DATA,
        )

    def frames(self) -> typing.Iterator[Frame]:
        """OPEN first, then every DATA chunk in order."""
        yield self.open_frame()
        for seq in range(len(self.chunks)):
            yield self.data_frame(seq)


class StreamReassembler:
    """Rebuilds one stream's payload from frames, in any order.

    Duplicate and out-of-order DATA frames are tolerated (retransmission
    makes both routine); :attr:`next_expected` is the cumulative-ack
    point a resuming sender continues from.
    """

    def __init__(self, open_frame: Frame) -> None:
        if open_frame.ftype != FrameType.OPEN:
            raise FrameError("reassembler must be seeded with an OPEN frame")
        self.stream_id = open_frame.stream_id
        self.info = OpenInfo.decode(open_frame.payload)
        self._chunks: dict[int, bytes] = {}

    @property
    def context(self) -> dict:
        return self.info.context

    @property
    def received_count(self) -> int:
        return len(self._chunks)

    @property
    def complete(self) -> bool:
        return len(self._chunks) == self.info.chunk_count

    @property
    def next_expected(self) -> int:
        """Lowest missing chunk index (== chunk_count when complete)."""
        seq = 0
        while seq in self._chunks:
            seq += 1
        return seq

    def feed(self, frame: Frame) -> bool:
        """Absorb one frame; returns True once the stream is complete."""
        if frame.stream_id != self.stream_id:
            raise FrameError(
                f"frame for stream {frame.stream_id} fed to reassembler "
                f"of stream {self.stream_id}"
            )
        if frame.ftype == FrameType.DATA:
            if frame.seq >= self.info.chunk_count:
                raise FrameError(
                    f"chunk {frame.seq} out of range for stream "
                    f"{self.stream_id} ({self.info.chunk_count} chunks)"
                )
            self._chunks.setdefault(frame.seq, frame.payload)
        # OPEN duplicates and ACKs carry no new data.
        return self.complete

    def payload(self) -> bytes:
        """The reassembled bytes; verifies the whole-payload checksum."""
        if not self.complete:
            missing = self.next_expected
            raise FrameError(
                f"stream {self.stream_id} incomplete: chunk {missing} of "
                f"{self.info.chunk_count} missing"
            )
        data = b"".join(self._chunks[i] for i in range(self.info.chunk_count))
        if len(data) != self.info.total_size:
            raise FrameError(
                f"stream {self.stream_id} size mismatch: OPEN said "
                f"{self.info.total_size}, reassembled {len(data)}"
            )
        if zlib.crc32(data) != self.info.total_crc32:
            raise FrameError(
                f"stream {self.stream_id} payload checksum mismatch"
            )
        return data
