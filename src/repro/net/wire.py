"""Socket framing for the asyncio transport backend.

The simkernel backend moves Python objects between in-process inboxes;
the real-socket backend must put the *same* messages on a TCP stream.
This module is the codec between the two worlds: a
:class:`~repro.net.sim_transport.Message` (envelope metadata plus
payload) becomes one length-prefixed frame, and the payload itself — a
control-plane :class:`~repro.protocol.messages.Request`/``Reply``, a
data-plane ``bytes`` stream frame (already binary, PR 3), or one of the
small handshake tuples — is encoded with a tagged binary scheme that
round-trips every payload type the protocol actually sends.

Frame layout (network byte order)::

    +----+----+------+-------+-----------------+
    | 'UW'    | ver  | ftype | body length (u32)|  header: !2sBBI (8 bytes)
    +----+----+------+-------+-----------------+
    | body ...                                  |
    +-------------------------------------------+

Frame types:

``HELLO``
    Sent once by a connecting client: body is the UTF-8 host name the
    connection speaks for, so the acceptor can bind the socket to a
    workstation host.

``MSG``
    One transport message: body is the encoded envelope fields
    (msg_id, sender, recipient, channel, size_bytes, deliver) followed
    by the tagged payload.  ``size_bytes`` rides explicitly because the
    simulated wire size (what benchmarks charge for) is part of the
    protocol contract, independent of the encoding's framing overhead.

Malformed input raises :class:`~repro.net.errors.FrameDecodeError`
(code ``net.frame_decode``) — never a bare ``struct.error`` — so both
backends surface decode failures through the same ``net.*`` hierarchy.
"""

from __future__ import annotations

import struct
import typing
from dataclasses import dataclass

from repro.net.errors import FrameDecodeError
from repro.protocol.messages import Reply, Request

if typing.TYPE_CHECKING:  # pragma: no cover
    import asyncio

__all__ = [
    "FTYPE_HELLO",
    "FTYPE_MSG",
    "HEADER",
    "WireMessage",
    "decode_frame",
    "encode_hello",
    "encode_message",
    "read_frames",
]

#: Frame header: magic, version, frame type, body length.
HEADER = struct.Struct("!2sBBI")
MAGIC = b"UW"
VERSION = 1

FTYPE_HELLO = 1
FTYPE_MSG = 2

#: Refuse absurd bodies before allocating (64 MiB covers every payload
#: the reproduction sends by orders of magnitude).
MAX_BODY = 64 * 1024 * 1024

# -- tagged payload encoding --------------------------------------------------
# One leading tag byte per value; containers encode a length then their
# items.  Only the types the protocol actually puts on the wire are
# supported — an unknown type at encode time is a programming error
# (TypeError), unknown tag at decode time is FrameDecodeError.

_T_NONE = 0x00
_T_TRUE = 0x01
_T_FALSE = 0x02
_T_INT = 0x03
_T_FLOAT = 0x04
_T_STR = 0x05
_T_BYTES = 0x06
_T_LIST = 0x07
_T_TUPLE = 0x08
_T_DICT = 0x09
_T_REQUEST = 0x0A
_T_REPLY = 0x0B

_U32 = struct.Struct("!I")
_F64 = struct.Struct("!d")


def _enc_str(out: list[bytes], s: str) -> None:
    raw = s.encode("utf-8")
    out.append(_U32.pack(len(raw)))
    out.append(raw)


def _encode_value(out: list[bytes], value: object) -> None:
    if value is None:
        out.append(bytes([_T_NONE]))
    elif value is True:
        out.append(bytes([_T_TRUE]))
    elif value is False:
        out.append(bytes([_T_FALSE]))
    elif isinstance(value, int):
        raw = value.to_bytes((value.bit_length() + 8) // 8 or 1, "big", signed=True)
        out.append(bytes([_T_INT, len(raw)]))
        out.append(raw)
    elif isinstance(value, float):
        out.append(bytes([_T_FLOAT]))
        out.append(_F64.pack(value))
    elif isinstance(value, str):
        out.append(bytes([_T_STR]))
        _enc_str(out, value)
    elif isinstance(value, (bytes, bytearray, memoryview)):
        raw = bytes(value)
        out.append(bytes([_T_BYTES]))
        out.append(_U32.pack(len(raw)))
        out.append(raw)
    elif isinstance(value, (list, tuple)):
        out.append(bytes([_T_LIST if isinstance(value, list) else _T_TUPLE]))
        out.append(_U32.pack(len(value)))
        for item in value:
            _encode_value(out, item)
    elif isinstance(value, dict):
        out.append(bytes([_T_DICT]))
        out.append(_U32.pack(len(value)))
        for k, v in value.items():
            _encode_value(out, k)
            _encode_value(out, v)
    elif isinstance(value, Request):
        out.append(bytes([_T_REQUEST]))
        # request_id rides the wire: correlation must survive the socket.
        _encode_value(out, value.request_id)
        _enc_str(out, value.kind)
        _enc_str(out, value.user_dn)
        _encode_value(out, value.payload)
        _enc_str(out, value.vsite)
        _enc_str(out, value.trace_id)
        _enc_str(out, value.parent_span_id)
    elif isinstance(value, Reply):
        out.append(bytes([_T_REPLY]))
        _encode_value(out, value.request_id)
        _encode_value(out, value.ok)
        _encode_value(out, value.payload)
        _enc_str(out, value.error)
        _enc_str(out, value.error_code)
    else:
        raise TypeError(
            f"payload type {type(value).__name__} is not wire-encodable"
        )


class _Reader:
    """Cursor over a frame body; every read bounds-checks."""

    __slots__ = ("buf", "pos")

    def __init__(self, buf: bytes) -> None:
        self.buf = buf
        self.pos = 0

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if n < 0 or end > len(self.buf):
            raise FrameDecodeError("truncated frame body")
        chunk = self.buf[self.pos:end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def string(self) -> str:
        raw = self.take(self.u32())
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FrameDecodeError(f"invalid UTF-8 in frame: {exc}") from None


def _decode_value(r: _Reader) -> object:
    tag = r.u8()
    if tag == _T_NONE:
        return None
    if tag == _T_TRUE:
        return True
    if tag == _T_FALSE:
        return False
    if tag == _T_INT:
        return int.from_bytes(r.take(r.u8()), "big", signed=True)
    if tag == _T_FLOAT:
        return _F64.unpack(r.take(8))[0]
    if tag == _T_STR:
        return r.string()
    if tag == _T_BYTES:
        return r.take(r.u32())
    if tag in (_T_LIST, _T_TUPLE):
        n = r.u32()
        items = [_decode_value(r) for _ in range(n)]
        return items if tag == _T_LIST else tuple(items)
    if tag == _T_DICT:
        n = r.u32()
        return {_decode_value(r): _decode_value(r) for _ in range(n)}
    if tag == _T_REQUEST:
        request_id = _decode_value(r)
        kind = r.string()
        user_dn = r.string()
        payload = _decode_value(r)
        vsite = r.string()
        trace_id = r.string()
        parent_span_id = r.string()
        req = Request(
            kind=kind, user_dn=user_dn,
            payload=typing.cast(bytes, payload), vsite=vsite,
            trace_id=trace_id, parent_span_id=parent_span_id,
        )
        # The dataclass default allocated a fresh local id; restore the
        # sender's so replies correlate end to end.
        req.request_id = typing.cast(int, request_id)
        return req
    if tag == _T_REPLY:
        return Reply(
            request_id=typing.cast(int, _decode_value(r)),
            ok=bool(_decode_value(r)),
            payload=typing.cast(bytes, _decode_value(r)),
            error=r.string(),
            error_code=r.string(),
        )
    raise FrameDecodeError(f"unknown payload tag 0x{tag:02x}")


# -- frames -------------------------------------------------------------------

@dataclass(slots=True)
class WireMessage:
    """A decoded MSG frame: envelope metadata plus payload."""

    msg_id: int
    sender: str
    recipient: str
    channel: str
    size_bytes: int
    deliver: bool
    payload: object


def _frame(ftype: int, body: bytes) -> bytes:
    return HEADER.pack(MAGIC, VERSION, ftype, len(body)) + body


def encode_hello(host_name: str) -> bytes:
    """HELLO frame binding a connection to a workstation host."""
    return _frame(FTYPE_HELLO, host_name.encode("utf-8"))


def encode_message(
    msg_id: int,
    sender: str,
    recipient: str,
    payload: object,
    size_bytes: int,
    channel: str,
    deliver: bool,
) -> bytes:
    """MSG frame carrying one transport message."""
    out: list[bytes] = []
    _encode_value(out, msg_id)
    _enc_str(out, sender)
    _enc_str(out, recipient)
    _enc_str(out, channel)
    _encode_value(out, size_bytes)
    _encode_value(out, deliver)
    _encode_value(out, payload)
    return _frame(FTYPE_MSG, b"".join(out))


def decode_frame(ftype: int, body: bytes) -> "str | WireMessage":
    """Decode a frame body: HELLO -> host name, MSG -> WireMessage."""
    if ftype == FTYPE_HELLO:
        try:
            return body.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FrameDecodeError(f"invalid HELLO host name: {exc}") from None
    if ftype == FTYPE_MSG:
        r = _Reader(body)
        msg_id = typing.cast(int, _decode_value(r))
        sender = r.string()
        recipient = r.string()
        channel = r.string()
        size_bytes = typing.cast(int, _decode_value(r))
        deliver = bool(_decode_value(r))
        payload = _decode_value(r)
        if r.pos != len(body):
            raise FrameDecodeError(
                f"{len(body) - r.pos} trailing bytes after MSG payload"
            )
        return WireMessage(
            msg_id=msg_id, sender=sender, recipient=recipient,
            channel=channel, size_bytes=size_bytes, deliver=deliver,
            payload=payload,
        )
    raise FrameDecodeError(f"unknown frame type {ftype}")


async def read_frames(
    reader: "asyncio.StreamReader",
) -> typing.AsyncIterator[tuple[int, bytes]]:
    """Yield ``(ftype, body)`` frames off an asyncio StreamReader.

    Stops cleanly on EOF at a frame boundary; raises
    :class:`FrameDecodeError` on garbage and lets connection errors
    (``ConnectionResetError`` et al.) propagate to the caller's handler.
    """
    import asyncio

    while True:
        try:
            header = await reader.readexactly(HEADER.size)
        except asyncio.IncompleteReadError as exc:
            if exc.partial:
                raise FrameDecodeError(
                    "connection closed mid-header"
                ) from None
            return  # clean EOF between frames
        magic, version, ftype, length = HEADER.unpack(header)
        if magic != MAGIC:
            raise FrameDecodeError(f"bad frame magic {magic!r}")
        if version != VERSION:
            raise FrameDecodeError(f"unsupported frame version {version}")
        if length > MAX_BODY:
            raise FrameDecodeError(f"frame body {length} exceeds {MAX_BODY}")
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise FrameDecodeError("connection closed mid-body") from None
        yield ftype, body
