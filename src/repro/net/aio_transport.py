"""The real-socket transport backend: asyncio TCP under the sim clock.

:class:`AioTransport` extends the simkernel :class:`~repro.net.sim_transport.Network`
with one change of fabric: edges that cross the WAN boundary — a host
registered with :meth:`mark_wan` (user workstations) talking to the
server tier — carry their messages as length-prefixed frames over real
TCP connections (:mod:`repro.net.wire`), while intra-site edges
(gateway ↔ NJS) keep the in-process delivery path.  That split mirrors
the paper's deployment: the user's applet speaks SSL over the open
Internet to the gateway, and everything behind the gateway is the
site's own fast network.

The protocol stack above is untouched because time is *hybrid*: the
simulated clock only advances when the sockets are quiet.  The pump
(:meth:`drive`) alternates between draining due simulator events and
awaiting socket activity; while any frame is unacknowledged the clock
is frozen, so response deadlines, gateway subscription holds, and retry
backoff timers fire exactly when they would in a pure simulation — but
each WAN round-trip is real bytes through the OS, measurable in
wall-clock msgs/s and MB/s.

Failure mapping keeps the ``net.*`` error contract: a TCP connect
failure raises :class:`ConnectionRefused`, a reset or EOF with frames
in flight fails their delivery events with :class:`ConnectionReset` —
both subclasses of :class:`ConnectionLost`, so every retry loop written
against the sim backend handles them unchanged.
"""

from __future__ import annotations

import asyncio
import typing

from repro.net.errors import (
    ConnectionRefused,
    ConnectionReset,
    FrameDecodeError,
    NetworkError,
)
from repro.net.sim_transport import Message, Network
from repro.net.wire import (
    FTYPE_HELLO,
    HEADER,
    WireMessage,
    decode_frame,
    encode_hello,
    encode_message,
    read_frames,
)
from repro.simkernel import Event, Simulator

if typing.TYPE_CHECKING:  # pragma: no cover
    from repro.simkernel import Process

__all__ = ["AioTransport"]


class AioTransport(Network):
    """TCP-backed transport; see the module docstring for the model."""

    kind = "aio"
    realtime = True

    def __init__(
        self,
        sim: Simulator,
        seed: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        io_timeout_s: float = 30.0,
    ) -> None:
        super().__init__(sim, seed)
        self._tcp_host = host
        self._tcp_port = int(port)
        #: Wall-clock guard: if no socket progress happens for this long
        #: while frames are in flight (or drivers are starved), the
        #: transport declares itself stalled instead of hanging forever.
        self.io_timeout_s = io_timeout_s
        self._wan: set[str] = set()
        self._server: asyncio.AbstractServer | None = None
        self._wake: asyncio.Event | None = None
        #: One TCP connection per WAN host, addressed from both ends.
        self._client_writers: dict[str, asyncio.StreamWriter] = {}
        self._server_writers: dict[str, asyncio.StreamWriter] = {}
        self._io_tasks: set[asyncio.Task] = set()
        #: msg_id -> (delivery event, WAN host the frame rides through).
        self._pending: dict[int, tuple[Event, str]] = {}
        self._pump_task: asyncio.Task | None = None
        self._driving = 0
        self._driver_futs: set[asyncio.Future] = set()
        #: Real-socket instrumentation (frames/bytes received off TCP).
        self.socket_frames = 0
        self.socket_bytes = 0

    # -- topology --------------------------------------------------------------
    def mark_wan(self, name: str) -> None:
        self._wan.add(name)

    @property
    def started(self) -> bool:
        return self._server is not None

    @property
    def port(self) -> int:
        """The bound TCP port (after :meth:`start`)."""
        if self._server is None:
            raise NetworkError("transport not started")
        return self._server.sockets[0].getsockname()[1]

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> "AioTransport":
        """Bind the server socket for the gateway tier; idempotent."""
        if self._server is None:
            self._wake = asyncio.Event()
            self._server = await asyncio.start_server(
                self._accept, self._tcp_host, self._tcp_port
            )
        return self

    async def ensure_host(self, name: str) -> None:
        """Open (once) the TCP connection a WAN host sends through."""
        if name not in self._wan:
            raise NetworkError(f"host {name!r} is not WAN-marked")
        if self._server is None:
            raise NetworkError("transport not started")
        writer = self._client_writers.get(name)
        if writer is not None and not writer.is_closing():
            return
        try:
            reader, writer = await asyncio.open_connection(
                self._tcp_host, self.port
            )
        except OSError as exc:
            raise ConnectionRefused(
                f"connect to {self._tcp_host}:{self.port} for {name!r} "
                f"failed: {exc}"
            ) from exc
        writer.write(encode_hello(name))
        await writer.drain()
        self._client_writers[name] = writer
        task = asyncio.create_task(
            self._reader_loop(name, reader, writer), name=f"aio-client-{name}"
        )
        self._io_tasks.add(task)
        task.add_done_callback(self._io_tasks.discard)

    async def aclose(self) -> None:
        """Tear down sockets and the pump; safe to call repeatedly."""
        for task in list(self._io_tasks):
            task.cancel()
        if self._pump_task is not None:
            self._pump_task.cancel()
        for writers in (self._client_writers, self._server_writers):
            for writer in list(writers.values()):
                writer.close()
            writers.clear()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await asyncio.gather(*self._io_tasks, return_exceptions=True)
        self._io_tasks.clear()
        self._pump_task = None

    async def __aenter__(self) -> "AioTransport":
        return await self.start()

    async def __aexit__(self, *exc: object) -> None:
        await self.aclose()

    # -- socket plumbing -------------------------------------------------------
    async def _accept(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._io_tasks.add(task)
            task.add_done_callback(self._io_tasks.discard)
        name: str | None = None
        try:
            async for ftype, body in read_frames(reader):
                decoded = decode_frame(ftype, body)
                if name is None:
                    if ftype != FTYPE_HELLO:
                        raise FrameDecodeError(
                            "first frame on a new connection must be HELLO"
                        )
                    name = typing.cast(str, decoded)
                    self._server_writers[name] = writer
                    self._notify()
                    continue
                self._on_frame(
                    typing.cast(WireMessage, decoded), HEADER.size + len(body)
                )
        except (OSError, FrameDecodeError):
            pass  # fall through to _drop_endpoint, which fails in-flight sends
        except asyncio.CancelledError:
            # aclose() cancels handlers; return cleanly so the stream
            # protocol's done-callback does not log the cancellation.
            pass
        finally:
            if name is not None:
                self._drop_endpoint(name)
            writer.close()

    async def _reader_loop(
        self,
        name: str,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            async for ftype, body in read_frames(reader):
                decoded = decode_frame(ftype, body)
                self._on_frame(
                    typing.cast(WireMessage, decoded), HEADER.size + len(body)
                )
        except (OSError, FrameDecodeError):
            pass
        except asyncio.CancelledError:
            pass  # aclose() cancels reader tasks; exit quietly
        finally:
            self._drop_endpoint(name)
            writer.close()

    def _on_frame(self, wm: WireMessage, nbytes: int) -> None:
        """A frame arrived off a socket: deliver and acknowledge."""
        self.socket_frames += 1
        self.socket_bytes += nbytes
        message = Message(
            sender=wm.sender, recipient=wm.recipient, payload=wm.payload,
            size_bytes=wm.size_bytes, msg_id=wm.msg_id, channel=wm.channel,
        )
        if wm.deliver:
            self.host(wm.recipient)._deliver(message)
        entry = self._pending.pop(wm.msg_id, None)
        if entry is not None:
            entry[0].succeed(message)
        self._notify()

    def _drop_endpoint(self, name: str) -> None:
        """A WAN host's connection died: fail its in-flight deliveries."""
        self._client_writers.pop(name, None)
        self._server_writers.pop(name, None)
        stale = [m for m, (_ev, wan) in self._pending.items() if wan == name]
        for msg_id in stale:
            ev, _ = self._pending.pop(msg_id)
            ev.fail(
                ConnectionReset(
                    f"connection for {name!r} dropped with message "
                    f"{msg_id} in flight"
                )
            )
        self._notify()

    def _notify(self) -> None:
        if self._wake is not None:
            self._wake.set()

    # -- traffic ---------------------------------------------------------------
    def send(
        self,
        src: str,
        dst: str,
        payload: object,
        size_bytes: int,
        channel: str = "raw",
        deliver: bool = True,
    ) -> Event:
        wan_src = src in self._wan
        wan_dst = dst in self._wan
        if self._server is None or wan_src == wan_dst:
            # LAN edges (gateway <-> NJS) and pre-start traffic keep the
            # in-process delivery path with modeled latency.
            return super().send(src, dst, payload, size_bytes, channel, deliver)
        if size_bytes < 0:
            raise NetworkError("message size must be non-negative")
        self.host(dst)  # unknown-host parity with the sim backend
        link = self.get_link(src, dst)  # no-link parity (HostUnreachable)
        msg_id = next(self._msg_seq)
        wan_name = src if wan_src else dst
        writer = (
            self._client_writers.get(wan_name)
            if wan_src
            else self._server_writers.get(wan_name)
        )
        ev = self.sim.event(name=f"delivery:{msg_id}")
        if writer is None or writer.is_closing():
            return ev.fail(
                ConnectionRefused(
                    f"no live connection for WAN host {wan_name!r} "
                    f"({src} -> {dst})"
                )
            )
        # The simulated wire size still lands on the link counters so
        # total_bytes_sent() means the same thing on both backends.
        link.bytes_sent += size_bytes
        link.messages_sent += 1
        frame = encode_message(
            msg_id, src, dst, payload, size_bytes, channel, deliver
        )
        self._pending[msg_id] = (ev, wan_name)
        try:
            writer.write(frame)
        except OSError as exc:
            self._pending.pop(msg_id, None)
            return ev.fail(ConnectionReset(f"write to {wan_name!r} failed: {exc}"))
        self._notify()
        return ev

    # -- the pump --------------------------------------------------------------
    async def drive(self, proc: "Process") -> object:
        """Run a simkernel process to completion, pumping sim + sockets.

        Multiple concurrent ``drive`` calls share one pump task, so
        several async sessions can progress through the same grid — the
        asyncio analogue of ``sim.run(until=proc)``.
        """
        if proc.processed:
            if proc.ok:
                return proc.value
            raise typing.cast(BaseException, proc.value)
        loop = asyncio.get_running_loop()
        fut: asyncio.Future = loop.create_future()
        proc.defuse()  # the future carries the failure to the awaiter

        def _settle(ev: Event) -> None:
            if not fut.done():
                if ev._ok:
                    fut.set_result(ev._value)
                else:
                    fut.set_exception(typing.cast(BaseException, ev._value))

        assert proc.callbacks is not None
        proc.callbacks.append(_settle)
        self._driving += 1
        self._driver_futs.add(fut)
        if self._pump_task is None or self._pump_task.done():
            self._pump_task = asyncio.create_task(self._pump(), name="aio-pump")
        self._notify()
        try:
            return await fut
        finally:
            self._driving -= 1
            self._driver_futs.discard(fut)

    async def _pump(self) -> None:
        """Advance simulated time only while the sockets are quiet."""
        assert self._wake is not None
        wake = self._wake
        sim = self.sim
        while self._driving > 0:
            # Drain everything due at the current instant (this is where
            # sends are issued and delivered inboxes are consumed).
            sim.run(until=sim.now)
            # Yield once: socket readers consume newly written frames and
            # finished drivers resume/decrement before we decide to wait.
            await asyncio.sleep(0)
            if self._driving == 0:
                break
            if sim.peek() <= sim.now:
                continue  # the yield produced new due-now work
            if self._pending:
                wake.clear()
                if not self._pending:  # raced: frame landed before clear
                    continue
                try:
                    await asyncio.wait_for(wake.wait(), self.io_timeout_s)
                except asyncio.TimeoutError:
                    self._fail_pending(
                        NetworkError(
                            f"transport stalled: no socket progress in "
                            f"{self.io_timeout_s}s with "
                            f"{len(self._pending)} frames in flight"
                        )
                    )
                continue
            nxt = sim.peek()
            if nxt != float("inf"):
                # Sockets quiet: the next timer (retry deadline, hold
                # expiry, modeled LAN latency) is allowed to fire.
                sim.run(until=nxt)
                continue
            # Nothing due, nothing in flight, drivers still waiting:
            # either a new drive()/frame arrives, or we are deadlocked.
            wake.clear()
            if self._pending or sim.peek() != float("inf") or not self._driving:
                continue
            try:
                await asyncio.wait_for(wake.wait(), self.io_timeout_s)
            except asyncio.TimeoutError:
                stall = NetworkError(
                    "transport deadlock: drivers waiting with no simulator "
                    "events and no socket traffic"
                )
                for fut in list(self._driver_futs):
                    if not fut.done():
                        fut.set_exception(stall)
                break

    def _fail_pending(self, exc: NetworkError) -> None:
        for msg_id in list(self._pending):
            ev, _ = self._pending.pop(msg_id)
            ev.fail(exc)
        self._notify()
