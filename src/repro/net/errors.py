"""Exceptions for the transport layer (both backends).

The `net.*` codes are the stable contract: the simkernel backend and
the asyncio TCP backend raise the *same* classes for equivalent
conditions, so protocol retry machinery and facade callers never branch
on which fabric is underneath.  The refused/reset refinements subclass
:class:`ConnectionLost` deliberately — every retry loop written against
the sim backend (``except ConnectionLost``) handles real-socket failure
modes unchanged.
"""

from repro.errors import ReproError

__all__ = [
    "NetworkError",
    "HostUnreachable",
    "ConnectionLost",
    "ConnectionRefused",
    "ConnectionReset",
    "FrameError",
    "FrameDecodeError",
    "TransportMismatch",
]


class NetworkError(ReproError):
    """Base class for simulated-network errors."""

    code = "net.error"


class HostUnreachable(NetworkError):
    """No link exists between the two hosts."""

    code = "net.unreachable"


class ConnectionLost(NetworkError):
    """A message was lost in transit (the sender times out waiting)."""

    code = "net.connection_lost"


class ConnectionRefused(ConnectionLost):
    """The peer endpoint is not accepting connections.

    Raised by the asyncio backend when the TCP connect itself fails; the
    simkernel backend has no listening step, so there it only appears
    via fault injection.
    """

    code = "net.connection_refused"


class ConnectionReset(ConnectionLost):
    """An established connection dropped with the message unacknowledged.

    Raised by the asyncio backend when a socket hits EOF or a reset
    while frames are pending; the delivery events of every in-flight
    message on that connection fail with this.
    """

    code = "net.connection_reset"


class FrameError(NetworkError):
    """A data-plane frame is malformed, unsupported, or inconsistent."""

    code = "net.frame"


class FrameDecodeError(FrameError):
    """Bytes off the wire do not decode as a valid frame.

    Covers bad magic, unsupported version/type tags, and truncated or
    over-long bodies — anything where the codec cannot reconstruct the
    message that was sent.
    """

    code = "net.frame_decode"


class TransportMismatch(NetworkError):
    """A session facade was pointed at the wrong kind of transport.

    The blocking :class:`~repro.api.GridSession` cannot drive a realtime
    backend (its sends need a running event loop); requesting a backend
    that differs from what the grid was built with raises this too.
    """

    code = "net.transport_mismatch"
