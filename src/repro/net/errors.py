"""Exceptions for the simulated network."""

from repro.errors import ReproError

__all__ = ["NetworkError", "HostUnreachable", "ConnectionLost", "FrameError"]


class NetworkError(ReproError):
    """Base class for simulated-network errors."""

    code = "net.error"


class HostUnreachable(NetworkError):
    """No link exists between the two hosts."""

    code = "net.unreachable"


class ConnectionLost(NetworkError):
    """A message was lost in transit (the sender times out waiting)."""

    code = "net.connection_lost"


class FrameError(NetworkError):
    """A data-plane frame is malformed, unsupported, or inconsistent."""

    code = "net.frame"
