"""Exceptions for the simulated network."""

__all__ = ["NetworkError", "HostUnreachable", "ConnectionLost"]


class NetworkError(Exception):
    """Base class for simulated-network errors."""


class HostUnreachable(NetworkError):
    """No link exists between the two hosts."""


class ConnectionLost(NetworkError):
    """A message was lost in transit (the sender times out waiting)."""
