"""Extensions: the paper's section 6 outlook, implemented.

The paper closes with four future directions; three are buildable on the
reproduced architecture and live here:

- :mod:`repro.ext.broker` — "a resource broker which supports the users
  in a way that they can specify the needed resources on a more abstract
  level and the broker finds the appropriate execution server for it.
  Together with accounting functions and load information the resource
  broker can find the best system" (now a deprecation shim: the broker
  grew into the federated :mod:`repro.broker` subsystem);
- :mod:`repro.ext.accounting` — those accounting functions;
- :mod:`repro.ext.appinterfaces` — "application specific interfaces for
  standard packages like Ansys or Pamcrash";
- :mod:`repro.ext.coallocation` — a best-effort sketch of synchronous
  meta-computing, demonstrating exactly why the paper postponed it: the
  site-autonomy decision leaves no reservation primitive to build on.

(The fourth item, application steering, requires interactive processes,
which the architecture excludes by design.)
"""

from repro.ext.accounting import AccountingLog, UsageRecord
from repro.ext.appinterfaces import ApplicationTemplate, STANDARD_PACKAGES
from repro.ext.coallocation import CoAllocationResult, CoAllocator

__all__ = [
    "AccountingLog",
    "ApplicationTemplate",
    "BrokerDecision",
    "CoAllocationResult",
    "CoAllocator",
    "ResourceBroker",
    "STANDARD_PACKAGES",
    "UsageRecord",
]


def __getattr__(name: str):
    # Broker names resolve lazily through the repro.ext.broker shim, so
    # the deprecation warning fires on use, not on package import.
    if name in ("BrokerDecision", "ResourceBroker"):
        from repro.ext import broker as _broker_shim

        value = getattr(_broker_shim, name)
        globals()[name] = value
        return value
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
