"""Best-effort co-allocation: the meta-computing sketch of section 6.

The paper: "For the big grand challenge problems the integration of
meta-computing is a topic.  This extends the usage of distributed systems
in one UNICORE job to the synchronous use for a single application."
And section 5.5 explains why the prototype cannot do it: UNICORE "has no
means of influencing the scheduling on the destination systems ...
(i.e. to allow for synchronous execution of jobs on different systems)".

:class:`CoAllocator` demonstrates that tension: it *polls* the candidate
batch systems until all of them simultaneously show enough free CPUs,
then submits all parts in the same instant.  Without reservations this
is inherently racy — local jobs can grab the CPUs between observation
and start — so the result reports whether synchronous start was actually
achieved and how skewed the parts began.  The ablation benchmark uses
this to quantify the cost of site autonomy for synchronous workloads.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.batch.base import BatchJobSpec, BatchSystem
from repro.simkernel import Simulator

__all__ = ["CoAllocationResult", "CoAllocator"]


@dataclass(slots=True)
class CoAllocationResult:
    """What happened to one co-allocation attempt."""

    achieved: bool
    start_times: dict[str, float]
    polls: int

    @property
    def start_skew_s(self) -> float:
        """Max start-time difference between the parts (0 = synchronous)."""
        if not self.start_times:
            return float("inf")
        times = list(self.start_times.values())
        return max(times) - min(times)


class CoAllocator:
    """Polling-based synchronous start across multiple batch systems."""

    def __init__(
        self,
        sim: Simulator,
        poll_interval_s: float = 30.0,
        max_polls: int = 10_000,
        skew_tolerance_s: float = 1.0,
    ) -> None:
        self.sim = sim
        self.poll_interval_s = poll_interval_s
        self.max_polls = max_polls
        self.skew_tolerance_s = skew_tolerance_s

    def co_allocate(
        self, parts: list[tuple[BatchSystem, BatchJobSpec]]
    ) -> typing.Generator:
        """Try to start all ``parts`` simultaneously (yield from).

        Returns a :class:`CoAllocationResult`.  Submission happens only
        when every system *currently* shows enough free CPUs and an empty
        pending queue (otherwise FCFS would delay us behind the backlog);
        whether the parts then actually start together is up to the
        sites — exactly the autonomy gap the paper describes.
        """
        polls = 0
        for _ in range(self.max_polls):
            polls += 1
            ready = all(
                system.free_cpus >= spec.resources.cpus
                and system.pending_count == 0
                for system, spec in parts
            )
            if ready:
                break
            yield self.sim.timeout(self.poll_interval_s)
        else:
            return CoAllocationResult(achieved=False, start_times={}, polls=polls)

        job_ids = [
            (system, system.submit(spec)) for system, spec in parts
        ]
        # Wait for all to finish, then inspect when each started.
        for system, job_id in job_ids:
            record = system.query(job_id)
            assert record.completion_event is not None
            yield record.completion_event
        start_times = {
            f"{system.machine.name}:{job_id}": typing.cast(
                float, system.query(job_id).start_time
            )
            for system, job_id in job_ids
        }
        result = CoAllocationResult(
            achieved=True, start_times=start_times, polls=polls
        )
        result.achieved = result.start_skew_s <= self.skew_tolerance_s
        return result
