"""Accounting functions (paper section 6).

Tracks per-user, per-Vsite resource consumption from batch records so the
broker can weigh cost and sites can bill their users.
"""

from __future__ import annotations

import typing
from dataclasses import dataclass

from repro.batch.base import BatchJobRecord, BatchState

__all__ = ["UsageRecord", "AccountingLog"]


@dataclass(frozen=True, slots=True)
class UsageRecord:
    """One job's billed consumption."""

    user: str
    group: str
    vsite: str
    cpu_seconds: float
    origin: str  # "unicore" or "local"

    @property
    def cpu_hours(self) -> float:
        return self.cpu_seconds / 3600.0


class AccountingLog:
    """Collects usage from completed batch records."""

    def __init__(self, cost_per_cpu_hour: dict[str, float] | None = None) -> None:
        self._records: list[UsageRecord] = []
        #: Per-Vsite price (abstract currency units per CPU-hour).
        self.cost_per_cpu_hour = dict(cost_per_cpu_hour or {})

    def charge(self, vsite: str, record: BatchJobRecord) -> UsageRecord | None:
        """Account one finished batch record (DONE or FAILED both bill)."""
        if record.state not in (BatchState.DONE, BatchState.FAILED):
            return None
        if record.start_time is None or record.end_time is None:
            return None
        usage = UsageRecord(
            user=record.spec.owner,
            group=record.spec.group,
            vsite=vsite,
            cpu_seconds=record.spec.resources.cpus
            * (record.end_time - record.start_time),
            origin=record.spec.origin,
        )
        self._records.append(usage)
        return usage

    def charge_all(self, vsite: str, records: typing.Iterable[BatchJobRecord]) -> int:
        """Charge every billable record; returns how many were billed."""
        return sum(1 for r in records if self.charge(vsite, r) is not None)

    # -- queries -------------------------------------------------------------
    def cpu_hours_by_user(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for r in self._records:
            out[r.user] = out.get(r.user, 0.0) + r.cpu_hours
        return out

    def cpu_hours_by_vsite(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for r in self._records:
            out[r.vsite] = out.get(r.vsite, 0.0) + r.cpu_hours
        return out

    def cost_by_user(self) -> dict[str, float]:
        out: dict[str, float] = {}
        for r in self._records:
            rate = self.cost_per_cpu_hour.get(r.vsite, 1.0)
            out[r.user] = out.get(r.user, 0.0) + r.cpu_hours * rate
        return out

    def __len__(self) -> int:
        return len(self._records)
