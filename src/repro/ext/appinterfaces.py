"""Application-specific interfaces (paper section 6).

"Application specific interfaces for standard packages like Ansys or
Pamcrash will make life easier especially for users from industry."
(Also the WebSubmit comparison in section 2: letting users "solve their
computational problem using application terms instead of computer
hardware and software system terms".)

An :class:`ApplicationTemplate` turns domain-level parameters into a
fully wired UNICORE job: imports, the package invocation as a script
task, and result exports — the user never sees a batch directive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ajo.errors import ValidationError
from repro.client.jpa import JobBuilder, JobPreparationAgent
from repro.resources.model import ResourceRequest

__all__ = ["ApplicationTemplate", "STANDARD_PACKAGES"]


@dataclass(frozen=True, slots=True)
class ApplicationTemplate:
    """Builds jobs for one packaged application in application terms.

    Attributes
    ----------
    package:
        The resource-page package name the destination must offer.
    command:
        Invocation template; ``{input}``/``{cpus}`` are substituted.
    default_memory_per_cpu_mb / runtime_per_mb_s:
        Crude application-calibrated sizing rules: the whole point of an
        application interface is that *it* knows these, not the user.
    """

    name: str
    package: str
    command: str
    input_extension: str
    result_files: tuple[str, ...]
    default_memory_per_cpu_mb: float = 256.0
    runtime_per_mb_s: float = 600.0

    def build_job(
        self,
        jpa: JobPreparationAgent,
        vsite: str,
        input_path: str,
        input_size_mb: float,
        cpus: int = 4,
        export_to: str | None = None,
    ) -> JobBuilder:
        """A complete job from application-level inputs.

        ``input_path`` is a workstation file (the engineer's model deck).
        """
        if not input_path.endswith(self.input_extension):
            raise ValidationError(
                f"{self.name} expects a {self.input_extension} input, got "
                f"{input_path!r}"
            )
        page = jpa.session.resource_pages.get(vsite)
        if page is not None and not page.software.has("package", self.package):
            raise ValidationError(
                f"Vsite {vsite} does not offer the {self.package} package"
            )
        runtime = max(60.0, input_size_mb * self.runtime_per_mb_s / cpus)
        resources = ResourceRequest(
            cpus=cpus,
            time_s=runtime * 3.0,
            memory_mb=cpus * self.default_memory_per_cpu_mb,
        )
        deck = f"model{self.input_extension}"
        job = jpa.new_job(f"{self.name}-run", vsite=vsite)
        imp = job.import_from_workstation(input_path, deck)
        run = job.script_task(
            f"{self.name}",
            script="#!/bin/sh\n"
            + self.command.format(input=deck, cpus=cpus)
            + "\n",
            resources=resources,
            simulated_runtime_s=runtime,
        )
        job.depends(imp, run, files=[deck])
        for result in self.result_files:
            exp = job.export_to_xspace(
                result, (export_to or "/results") + f"/{result}"
            )
            job.depends(run, exp, files=[result])
        return job


#: The packages the paper names, plus the section 2 WebSubmit example.
STANDARD_PACKAGES: dict[str, ApplicationTemplate] = {
    "ansys": ApplicationTemplate(
        name="ansys",
        package="ansys",
        command="ansys -np {cpus} -i {input}",
        input_extension=".db",
        result_files=("solution.rst",),
    ),
    "pamcrash": ApplicationTemplate(
        name="pamcrash",
        package="pamcrash",
        command="pamcrash -nproc {cpus} {input}",
        input_extension=".pc",
        result_files=("crash.erf", "crash.out"),
    ),
    "gaussian94": ApplicationTemplate(
        name="gaussian94",
        package="gaussian94",
        command="g94 < {input}",
        input_extension=".com",
        result_files=("molecule.log", "molecule.chk"),
        runtime_per_mb_s=3600.0,
    ),
}
