"""Deprecated home of the section-6 resource broker.

The one-shot placement broker moved to :mod:`repro.broker.placement`
when the federated scheduling tier (:mod:`repro.broker`) was built
around it.  This module is a thin PEP 562 shim (the same pattern as
:mod:`repro.core`): every historical name still resolves, but the first
access emits a :class:`DeprecationWarning` pointing at the new home.
"""

from __future__ import annotations

from repro._compat import deprecated_module_attr

__all__ = ["BrokerDecision", "ResourceBroker"]

_HOME = "repro.broker.placement"

__getattr__, __dir__ = deprecated_module_attr(
    __name__, globals(), {name: _HOME for name in __all__},
    hint="(or use the federated repro.broker tier)",
)
