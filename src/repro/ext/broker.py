"""Deprecated home of the section-6 resource broker.

The one-shot placement broker moved to :mod:`repro.broker.placement`
when the federated scheduling tier (:mod:`repro.broker`) was built
around it.  This module is a thin PEP 562 shim (the same pattern as
:mod:`repro.core`): every historical name still resolves, but the first
access emits a :class:`DeprecationWarning` pointing at the new home.
"""

from __future__ import annotations

import importlib
import warnings

__all__ = ["BrokerDecision", "ResourceBroker"]

_HOME = "repro.broker.placement"

_warned: set[str] = set()


def __getattr__(name: str):
    if name not in __all__:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    if name not in _warned:
        _warned.add(name)
        warnings.warn(
            f"repro.ext.broker.{name} is deprecated; import it from "
            f"{_HOME} (or use the federated repro.broker tier)",
            DeprecationWarning,
            stacklevel=2,
        )
    value = getattr(importlib.import_module(_HOME), name)
    globals()[name] = value  # warn once, then resolve at module speed
    return value


def __dir__() -> list[str]:
    return sorted(__all__)
