"""The unified exception hierarchy of the reproduction.

Historically each layer grew its own error module (``net``, ``server``,
``batch``, ``vfs``, ``resources``, ``security``, ``ajo``, ``protocol``),
which forced facade callers to import from six places to write one
``except`` clause.  Every layer base class now derives from
:class:`ReproError`, so:

* ``except ReproError`` catches anything the middleware itself raises
  (simulated-infrastructure failures, validation, security refusals),
  while genuine programming errors (``TypeError`` et al.) still escape;
* every exception class carries a stable machine-readable :attr:`code`
  (``"net.connection_lost"``, ``"server.consign"``, ...) that survives
  refactors and message-text changes — the contract facade callers and
  the fault-injection tooling key on.

All historical names are re-exported here, so

    from repro.errors import ConnectionLost, ConsignError, BatchError

works regardless of which layer defines them.  The re-export is lazy
(PEP 562) because the layer modules import :class:`ReproError` from
here — eager imports would cycle.
"""

from __future__ import annotations

import typing

__all__ = [
    "ReproError",
    "ERROR_CODES",
    "DuplicateErrorCode",
    "error_code_registry",
    "iter_error_classes",
    # net
    "NetworkError", "HostUnreachable", "ConnectionLost", "ConnectionRefused",
    "ConnectionReset", "FrameError", "FrameDecodeError", "TransportMismatch",
    # server
    "ServerError", "ConsignError", "IncarnationError", "UnknownUnicoreJobError",
    # batch
    "BatchError", "UnknownQueueError", "JobRejectedError", "UnknownJobError",
    "SystemOfflineError",
    # vfs
    "VFSError", "FileNotFoundVFSError", "FileExistsVFSError", "QuotaExceededError",
    # resources
    "ResourceError", "ResourcePageError", "ResourceRequestError",
    # security
    "SecurityError", "CertificateError", "CertificateExpired",
    "CertificateRevoked", "UntrustedIssuer", "SignatureInvalid",
    "TamperedBundleError", "AuthenticationError", "MappingError",
    # ajo
    "AJOError", "ValidationError", "DependencyCycleError", "SerializationError",
    "UnsafePathError",
    # protocol
    "RetryExhausted", "PollBudgetExhausted",
    # facade
    "WaitTimeout",
    # faults / resilience
    "FaultError", "CircuitOpenError", "ServiceUnavailable",
    # federation broker
    "BrokerError", "BrokerQuotaError", "NoCapacityError",
    # storage
    "StorageError", "SnapshotError",
]


class ReproError(Exception):
    """Base class for every error the simulated middleware raises.

    :attr:`code` is a stable dotted identifier (``layer.condition``)
    meant for programmatic handling; subclasses override it.
    """

    code: str = "repro.error"


class WaitTimeout(ReproError):
    """A bounded wait gave up before the job reached a terminal state.

    Raised by the facade tier (``GridSession.wait`` /
    ``JobMonitorController.wait_for_completion``) when the caller's poll
    budget runs out.  The job is *not* known to have failed — it simply
    was not terminal yet — so this is deliberately not a transport error
    and is never retried on the caller's behalf.
    """

    code = "api.wait_timeout"

    def __init__(self, job_id: str, polls: int) -> None:
        super().__init__(
            f"job {job_id} not terminal after {polls} status polls"
        )
        self.job_id = job_id
        self.polls = polls


#: Which layer module defines each re-exported name.
_HOMES = {
    "NetworkError": "repro.net.errors",
    "HostUnreachable": "repro.net.errors",
    "ConnectionLost": "repro.net.errors",
    "ConnectionRefused": "repro.net.errors",
    "ConnectionReset": "repro.net.errors",
    "FrameError": "repro.net.errors",
    "FrameDecodeError": "repro.net.errors",
    "TransportMismatch": "repro.net.errors",
    "ServerError": "repro.server.errors",
    "ConsignError": "repro.server.errors",
    "IncarnationError": "repro.server.errors",
    "UnknownUnicoreJobError": "repro.server.errors",
    "BatchError": "repro.batch.errors",
    "UnknownQueueError": "repro.batch.errors",
    "JobRejectedError": "repro.batch.errors",
    "UnknownJobError": "repro.batch.errors",
    "SystemOfflineError": "repro.batch.errors",
    "VFSError": "repro.vfs.errors",
    "FileNotFoundVFSError": "repro.vfs.errors",
    "FileExistsVFSError": "repro.vfs.errors",
    "QuotaExceededError": "repro.vfs.errors",
    "ResourceError": "repro.resources.errors",
    "ResourcePageError": "repro.resources.errors",
    "ResourceRequestError": "repro.resources.errors",
    "SecurityError": "repro.security.errors",
    "CertificateError": "repro.security.errors",
    "CertificateExpired": "repro.security.errors",
    "CertificateRevoked": "repro.security.errors",
    "UntrustedIssuer": "repro.security.errors",
    "SignatureInvalid": "repro.security.errors",
    "TamperedBundleError": "repro.security.errors",
    "AuthenticationError": "repro.security.errors",
    "MappingError": "repro.security.errors",
    "AJOError": "repro.ajo.errors",
    "ValidationError": "repro.ajo.errors",
    "DependencyCycleError": "repro.ajo.errors",
    "SerializationError": "repro.ajo.errors",
    "UnsafePathError": "repro.ajo.errors",
    "RetryExhausted": "repro.protocol.retry",
    "PollBudgetExhausted": "repro.protocol.retry",
    "FaultError": "repro.faults.errors",
    "CircuitOpenError": "repro.faults.errors",
    "ServiceUnavailable": "repro.faults.errors",
    "BrokerError": "repro.broker.errors",
    "BrokerQuotaError": "repro.broker.errors",
    "NoCapacityError": "repro.broker.errors",
    "StorageError": "repro.storage.errors",
    "SnapshotError": "repro.storage.errors",
}


class DuplicateErrorCode(RuntimeError):
    """Two exception classes declared the same stable ``code``.

    Codes are a wire contract (``Reply.error_code``): a collision would
    make the client-side re-raise ambiguous, so the registry refuses to
    build instead of silently picking a winner.
    """


#: Error classes that live outside the ``_HOMES`` layer modules but
#: still participate in the code registry.
_EXTRA_HOMES = ("repro.analysis.diagnostics",)


def iter_error_classes() -> "typing.Iterator[type[ReproError]]":
    """Every :class:`ReproError` subclass the middleware defines.

    Imports each layer error module first so the subclass walk is
    complete, then yields classes defined inside ``repro.*`` (test
    suites subclass :class:`ReproError` too; those stay out of the
    registry).  Deterministic order: module, then qualified name.
    """
    import importlib

    for home in sorted(set(_HOMES.values()) | set(_EXTRA_HOMES)):
        importlib.import_module(home)

    seen: set[type[ReproError]] = set()

    def walk(cls: "type[ReproError]") -> None:
        if cls in seen or not cls.__module__.startswith("repro."):
            return
        seen.add(cls)
        for sub in cls.__subclasses__():
            walk(sub)

    walk(ReproError)
    yield from sorted(seen, key=lambda c: (c.__module__, c.__qualname__))


def error_code_registry() -> "typing.Mapping[str, type[ReproError]]":
    """The canonical ``code -> exception class`` map, built on demand.

    Only classes that *declare* their own ``code`` (rather than inherit
    a parent's) register — a subclass without a declaration shares its
    parent's wire identity, which :mod:`repro.devlint` flags separately.
    Raises :class:`DuplicateErrorCode` if two classes claim one code.
    """
    registry: dict[str, type[ReproError]] = {}
    for cls in iter_error_classes():
        own = cls.__dict__.get("code")
        if not isinstance(own, str):
            continue
        holder = registry.get(own)
        if holder is not None and holder is not cls:
            raise DuplicateErrorCode(
                f"error code {own!r} declared by both "
                f"{holder.__module__}.{holder.__qualname__} and "
                f"{cls.__module__}.{cls.__qualname__}"
            )
        registry[own] = cls
    import types

    return types.MappingProxyType(dict(sorted(registry.items())))


def __getattr__(name: str):
    if name == "ERROR_CODES":
        registry = error_code_registry()
        globals()["ERROR_CODES"] = registry  # build once, then module speed
        return registry
    home = _HOMES.get(name)
    if home is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(home), name)


def __dir__() -> list[str]:
    return sorted(__all__)
