"""Shared backward-compatibility machinery.

Several modules in this repo have moved (the flat :mod:`repro.core`
namespace, the one-shot broker, the simkernel network classes, the NJS
journal).  Each old location stays importable through a PEP 562 module
``__getattr__`` that warns once per name and then caches the resolved
object into the module's globals so later lookups run at module speed.

That shim used to be copy-pasted per module; it lives here once now.
"""

from __future__ import annotations

import typing

__all__ = ["deprecated_module_attr"]


def deprecated_module_attr(
    module: str,
    module_globals: dict[str, object],
    homes: typing.Mapping[str, str],
    hint: str = "",
    public: typing.Iterable[str] | None = None,
) -> tuple[
    typing.Callable[[str], object], typing.Callable[[], list[str]]
]:
    """Build the ``(__getattr__, __dir__)`` pair for a deprecated module.

    ``homes`` maps each still-supported attribute to the module that
    really defines it.  The first access of each name emits a
    :class:`DeprecationWarning` naming the new home (plus ``hint``, if
    given); the resolved object is cached into ``module_globals`` so the
    warning fires exactly once and later accesses skip this machinery.

    ``public`` overrides the name set reported by ``dir()`` (defaults
    to the keys of ``homes`` plus whatever ``__all__`` the module
    already declares).
    """
    warned: set[str] = set()
    # Exposed on the module for tests that reset the warn-once state.
    module_globals["_warned"] = warned
    declared = module_globals.get("__all__") or ()
    names = set(public if public is not None else ())
    names.update(typing.cast(typing.Iterable[str], declared))
    names.update(homes)

    def __getattr__(name: str) -> object:
        home = homes.get(name)
        if home is None:
            raise AttributeError(
                f"module {module!r} has no attribute {name!r}"
            )
        if name not in warned:
            warned.add(name)
            import warnings

            suffix = f" {hint}" if hint else ""
            warnings.warn(
                f"{module}.{name} is deprecated; import it from "
                f"{home}{suffix}",
                DeprecationWarning,
                stacklevel=2,
            )
        import importlib

        value = getattr(importlib.import_module(home), name)
        module_globals[name] = value  # warn once, then resolve at module speed
        return value

    def __dir__() -> list[str]:
        return sorted(names)

    return __getattr__, __dir__
